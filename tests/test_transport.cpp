// Tests for the transport seam (dist/transport.hpp): frame codec
// round-trips and fuzzed corruption over every kind, payload-reader
// truncation, SimTransport == ReliableChannel identity, and a conformance
// suite run against both SimTransport and a loopback SocketTransport.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "dist/fault.hpp"
#include "dist/link.hpp"
#include "dist/message.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

Message sample_message(MessageKind kind, std::size_t n) {
  Message msg;
  msg.kind = kind;
  msg.payload.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    msg.payload[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xFF);
  }
  return msg;
}

// ------------------------------------------------------------ frame codec

TEST(FrameCodec, RoundTripEveryKind) {
  for (const FrameKind kind :
       {FrameKind::kHello, FrameKind::kAck, FrameKind::kClassify,
        FrameKind::kDecision, FrameKind::kBye, FrameKind::kStats,
        FrameKind::kClassScores, FrameKind::kBinaryFeatureMap,
        FrameKind::kRawImage}) {
    Frame frame;
    frame.kind = kind;
    frame.seq = 0x0123456789ABCDEFull;
    frame.payload = {0x00, 0xFF, 0x7F, 0x80, 0x01};
    const auto wire = encode_frame(frame);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());
    EXPECT_EQ(frame_size_from_header(wire.data()), wire.size());
    const Frame back = decode_frame(wire.data(), wire.size());
    EXPECT_EQ(back.kind, frame.kind) << to_string(kind);
    EXPECT_EQ(back.seq, frame.seq);
    EXPECT_EQ(back.payload, frame.payload);
  }
}

TEST(FrameCodec, RoundTripEmptyPayload) {
  Frame frame;
  frame.kind = FrameKind::kBye;
  const auto wire = encode_frame(frame);
  const Frame back = decode_frame(wire.data(), wire.size());
  EXPECT_EQ(back.kind, FrameKind::kBye);
  EXPECT_TRUE(back.payload.empty());
}

TEST(FrameCodec, EveryTruncationThrowsNamedError) {
  Frame frame;
  frame.kind = FrameKind::kDecision;
  frame.seq = 42;
  frame.payload = sample_message(MessageKind::kRawImage, 33).payload;
  const auto wire = encode_frame(frame);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    try {
      (void)decode_frame(wire.data(), n);
      FAIL() << "decode of " << n << "/" << wire.size() << " bytes passed";
    } catch (const Error& e) {
      EXPECT_NE(std::strlen(e.what()), 0u);  // named, not a raw out_of_range
    }
  }
}

TEST(FrameCodec, EveryBitFlipIsDetected) {
  // Flip every bit of the wire image; every flip must throw a named Error.
  // Magic and the CRC field have equality checks; the CRC itself spans
  // version/kind/reserved/seq/length plus the payload, so no single-bit
  // corruption can smuggle a frame through.
  Frame frame;
  frame.kind = FrameKind::kClassScores;
  frame.seq = 7;
  frame.payload = sample_message(MessageKind::kClassScores, 24).payload;
  const auto wire = encode_frame(frame);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto corrupt = wire;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW((void)decode_frame(corrupt.data(), corrupt.size()), Error)
        << "undetected flip of bit " << bit;
  }
}

TEST(FrameCodec, OversizedDeclaredLengthRejected) {
  Frame frame;
  frame.kind = FrameKind::kAck;
  auto wire = encode_frame(frame);
  // Corrupt the length field (bytes 16..19) to claim a giant payload; the
  // header-size probe must fail loudly instead of asking for gigabytes.
  wire[16] = 0xFF;
  wire[17] = 0xFF;
  wire[18] = 0xFF;
  wire[19] = 0x7F;
  EXPECT_THROW((void)frame_size_from_header(wire.data()), Error);
  EXPECT_THROW((void)decode_frame(wire.data(), wire.size()), Error);
}

TEST(FrameCodec, MessageFrameRoundTripEveryMessageKind) {
  for (const MessageKind kind :
       {MessageKind::kClassScores, MessageKind::kBinaryFeatureMap,
        MessageKind::kRawImage}) {
    const Message msg = sample_message(kind, 64);
    const Frame frame = make_message_frame(msg, /*sample=*/123, /*branch=*/4);
    EXPECT_EQ(frame.kind, frame_kind_of(kind));
    EXPECT_TRUE(is_data_kind(frame.kind));
    MessageMeta meta;
    const Message back = frame_message(frame, &meta);
    EXPECT_EQ(back.kind, kind) << to_string(kind);
    EXPECT_EQ(back.payload, msg.payload);
    EXPECT_EQ(meta.sample, 123);
    EXPECT_EQ(meta.branch, 4);
  }
}

TEST(FrameCodec, MessageFrameCarriesTraceContext) {
  const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 48);
  TraceContext ctx;
  ctx.trace_id = 0x0000ABCDEF123456ull;  // 48-bit (JSON double safe)
  ctx.parent_span = (std::uint64_t{17} << 8) | 1u;
  const Frame frame = make_message_frame(msg, /*sample=*/17, /*branch=*/2,
                                         ctx);
  MessageMeta meta;
  const Message back = frame_message(frame, &meta);
  EXPECT_EQ(back.payload, msg.payload);
  EXPECT_EQ(meta.sample, 17);
  EXPECT_EQ(meta.branch, 2);
  EXPECT_EQ(meta.trace.trace_id, ctx.trace_id);
  EXPECT_EQ(meta.trace.parent_span, ctx.parent_span);
}

TEST(FrameCodec, DefaultTraceContextIsZero) {
  // Callers that predate distributed tracing (tests, examples) still build
  // valid frames; the meta decodes to the zero context.
  const Message msg = sample_message(MessageKind::kClassScores, 8);
  const Frame frame = make_message_frame(msg, 3, 1);
  MessageMeta meta;
  (void)frame_message(frame, &meta);
  EXPECT_EQ(meta.trace.trace_id, 0u);
  EXPECT_EQ(meta.trace.parent_span, 0u);
}

TEST(FrameCodec, MetaTruncationThrowsAtEveryLength) {
  // The extended v2 meta header (sample, branch, trace id, parent span) must
  // fail loudly when a frame's payload is cut anywhere inside it.
  const Message msg = sample_message(MessageKind::kRawImage, 0);
  TraceContext ctx;
  ctx.trace_id = 1;
  ctx.parent_span = 2;
  const Frame full = make_message_frame(msg, 9, 0, ctx);
  for (std::size_t n = 0; n < full.payload.size(); ++n) {
    Frame cut = full;
    cut.payload.resize(n);
    MessageMeta meta;
    EXPECT_THROW((void)frame_message(cut, &meta), Error) << n;
  }
}

TEST(FrameCodec, ControlFrameIsNotAMessage) {
  Frame frame;
  frame.kind = FrameKind::kHello;
  EXPECT_FALSE(is_data_kind(frame.kind));
  MessageMeta meta;
  EXPECT_THROW((void)frame_message(frame, &meta), Error);
}

TEST(PayloadReader, TruncationThrowsNamedError) {
  PayloadWriter w;
  w.i64(-5);
  w.u8(7);
  const auto buf = w.take();
  for (std::size_t n = 0; n < buf.size(); ++n) {
    PayloadReader r(buf.data(), n, "unit-test");
    try {
      (void)r.i64();
      (void)r.u8();
      FAIL() << "read of " << n << "/" << buf.size() << " bytes passed";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("unit-test"), std::string::npos);
    }
  }
}

TEST(PayloadReader, RoundTripAllTypes) {
  PayloadWriter w;
  w.u8(0xAB);
  w.i32(-123456);
  w.i64(1LL << 40);
  w.f64(0.1);
  w.str("hello");
  const auto buf = w.take();
  PayloadReader r(buf.data(), buf.size(), "rt");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.i32(), -123456);
  EXPECT_EQ(r.i64(), 1LL << 40);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

// ----------------------------------------- SimTransport == ReliableChannel

TEST(SimTransport, IdenticalToDirectReliableChannel) {
  // The seam must be invisible: the same (injector, link, message, sample)
  // produces bit-identical SendResults through SimTransport and through a
  // directly-constructed ReliableChannel.
  FaultPlan plan;
  plan.seed = 9;
  plan.link_drop_prob = 0.45;
  const FaultInjector injector(std::move(plan));
  const ReliabilityConfig rel{};
  SimTransport transport(rel);
  transport.set_fault_injector(&injector);
  for (std::int64_t sample = 0; sample < 64; ++sample) {
    const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 40);
    Link via_transport("deviceA->edge");
    Link direct("deviceA->edge");
    const SendResult a = transport.send(via_transport, msg, sample);
    const SendResult b = ReliableChannel(direct, &injector, rel).send(msg, sample);
    EXPECT_EQ(a.delivered, b.delivered) << sample;
    EXPECT_EQ(a.attempts, b.attempts) << sample;
    EXPECT_EQ(a.dropped_attempts, b.dropped_attempts) << sample;
    EXPECT_EQ(a.latency_s, b.latency_s) << sample;
    EXPECT_EQ(via_transport.stats().bytes, direct.stats().bytes) << sample;
    EXPECT_EQ(via_transport.stats().dropped, direct.stats().dropped) << sample;
  }
}

// -------------------------------------------------- transport conformance

/// Loopback peer: ACKs every data frame as it arrives (in arrival order)
/// and records the payloads it saw. `acks` false simulates a peer that
/// reads but never acknowledges — the timeout route.
class AckPeer {
 public:
  explicit AckPeer(bool acks = true) : listener_(0), acks_(acks) {
    thread_ = std::thread([this] {
      auto conn = listener_.accept(10.0);
      if (conn == nullptr) return;
      const double deadline_s = 10.0;
      while (!stop_.load()) {
        std::optional<Frame> frame;
        try {
          frame = conn->read_frame(0.05);
        } catch (const Error&) {
          return;  // peer hung up mid-frame
        }
        if (conn->closed()) return;
        if (!frame.has_value()) continue;
        if (frame->kind == FrameKind::kBye) return;
        if (is_data_kind(frame->kind)) {
          MessageMeta meta;
          payloads_.push_back(frame_message(*frame, &meta).payload);
          if (acks_) {
            Frame ack;
            ack.kind = FrameKind::kAck;
            ack.seq = frame->seq;
            conn->write_frame(ack, deadline_s);
          }
        }
      }
    });
  }
  ~AckPeer() {
    stop_.store(true);
    thread_.join();
  }

  int port() const { return listener_.port(); }
  const std::vector<std::vector<std::uint8_t>>& payloads() const {
    return payloads_;
  }

 private:
  Listener listener_;
  bool acks_;
  std::atomic<bool> stop_{false};
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::thread thread_;
};

ReliabilityConfig fast_reliability() {
  ReliabilityConfig rel;
  rel.max_retries = 1;
  rel.timeout_s = 0.2;
  rel.backoff_base_s = 1e-3;
  return rel;
}

// Conformance: a delivered send reports delivered=true, one attempt, and
// charges the payload to the link's byte stats.
TEST(TransportConformance, SimDelivers) {
  SimTransport transport;  // no injector: nothing ever drops
  Link link("device0->edge");
  const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 100);
  const SendResult res = transport.send(link, msg, 0);
  EXPECT_TRUE(res.delivered);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(link.stats().bytes, 100);
}

TEST(TransportConformance, SocketDelivers) {
  AckPeer peer;
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 100);
  const SendResult res = transport.send(link, msg, 0);
  EXPECT_TRUE(res.delivered);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.dropped_attempts, 0);
  EXPECT_EQ(link.stats().bytes, 100);
  EXPECT_GE(res.latency_s, 0.0);
}

// Conformance: messages sent down one connection arrive in send order.
TEST(TransportConformance, SocketPerConnectionOrdering) {
  AckPeer peer;
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  std::vector<Message> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(sample_message(MessageKind::kClassScores,
                                  static_cast<std::size_t>(8 + i)));
    const SendResult res = transport.send(link, sent.back(), i);
    ASSERT_TRUE(res.delivered) << i;
  }
  // Every ACK implies the peer stored the payload before answering, so by
  // the time the last send returns all 20 are recorded, in order.
  ASSERT_EQ(peer.payloads().size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(peer.payloads()[i], sent[i].payload) << i;
  }
}

TEST(TransportConformance, SocketBatchKeepsPerItemOrder) {
  AckPeer peer;
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  std::vector<Message> msgs;
  for (int i = 0; i < 6; ++i) {
    msgs.push_back(sample_message(MessageKind::kBinaryFeatureMap,
                                  static_cast<std::size_t>(16 + 4 * i)));
  }
  std::vector<SocketTransport::BatchItem> batch;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    batch.push_back({&link, &msgs[i], /*sample=*/7,
                     /*branch=*/static_cast<std::int32_t>(i),
                     TraceContext{}});
  }
  const auto results = transport.send_batch(batch);
  ASSERT_EQ(results.size(), msgs.size());
  for (const auto& res : results) EXPECT_TRUE(res.delivered);
  ASSERT_EQ(peer.payloads().size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(peer.payloads()[i], msgs[i].payload) << i;
  }
}

// Conformance: an undeliverable message surfaces as a timeout after the
// configured attempts, never as a hang or an exception.
TEST(TransportConformance, SimTimeoutSurfaces) {
  FaultPlan plan;
  plan.link_drop_prob = 1.0;
  const FaultInjector injector(std::move(plan));
  SimTransport transport(fast_reliability());
  transport.set_fault_injector(&injector);
  Link link("device0->edge");
  const SendResult res =
      transport.send(link, sample_message(MessageKind::kClassScores, 12), 0);
  EXPECT_FALSE(res.delivered);
  EXPECT_EQ(res.attempts, 2);  // 1 + max_retries
  EXPECT_EQ(res.dropped_attempts, 2);
  EXPECT_EQ(link.stats().bytes, 0);  // nothing delivered
  EXPECT_EQ(link.stats().dropped, 2);
}

TEST(TransportConformance, SocketTimeoutSurfaces) {
  AckPeer peer(/*acks=*/false);  // reads frames, never acknowledges
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  const SendResult res =
      transport.send(link, sample_message(MessageKind::kClassScores, 12), 0);
  EXPECT_FALSE(res.delivered);
  EXPECT_EQ(res.attempts, 2);  // 1 + max_retries
  EXPECT_EQ(res.dropped_attempts, 2);
  EXPECT_EQ(link.stats().bytes, 0);
  EXPECT_EQ(link.stats().dropped, 2);
  EXPECT_GE(res.latency_s, 2 * 0.2);  // waited out both attempt timeouts
}

TEST(TransportConformance, SocketUnattachedChannelFailsFast) {
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  const SendResult res =
      transport.send(link, sample_message(MessageKind::kClassScores, 12), 0);
  EXPECT_FALSE(res.delivered);
  EXPECT_GE(res.attempts, 1);  // metrics divide by attempts-1 >= 0
}

TEST(TransportConformance, SocketFailFastCircuitBreaker) {
  AckPeer peer(/*acks=*/false);
  SocketTransport transport(fast_reliability());
  transport.set_fail_fast(true);
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  (void)transport.send(link, sample_message(MessageKind::kClassScores, 12), 0);
  EXPECT_TRUE(transport.channel_down(link.name()));
  const double t0 = static_cast<double>(clock()) / CLOCKS_PER_SEC;
  const SendResult res =
      transport.send(link, sample_message(MessageKind::kClassScores, 12), 1);
  const double elapsed = static_cast<double>(clock()) / CLOCKS_PER_SEC - t0;
  EXPECT_FALSE(res.delivered);
  EXPECT_LT(elapsed, 0.2);  // no timeout ladder after the breaker trips
}

// --------------------------------------------------- transport telemetry

TEST(TransportTelemetry, EagerLinkColumnsOnAttach) {
  // Every data channel registers its link.* counters at attach time, before
  // any traffic — so a degraded run exports the same metric columns as a
  // healthy one. Control channels ("-ctl") carry no byte accounting.
  AckPeer peer;
  obs::MetricsRegistry reg;
  SocketTransport transport(fast_reliability());
  transport.bind_metrics(&reg);
  const auto conn =
      connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0);
  transport.attach("cloud-ctl", conn);
  transport.attach("device0->cloud", conn);
  transport.attach("device1->cloud", conn);
  const auto names = reg.names();
  const std::vector<std::string> expected = {
      "transport.breaker_trips",      "transport.channels_down",
      "link.device0->cloud.attempts", "link.device0->cloud.retries",
      "link.device0->cloud.timeouts", "link.device0->cloud.bytes",
      "link.device1->cloud.attempts", "link.device1->cloud.retries",
      "link.device1->cloud.timeouts", "link.device1->cloud.bytes"};
  EXPECT_EQ(names, expected);  // attach order; no cloud-ctl columns
  EXPECT_EQ(reg.counter("link.device0->cloud.attempts").value(), 0);
}

TEST(TransportTelemetry, SendBooksLinkCounters) {
  AckPeer peer;
  obs::MetricsRegistry reg;
  SocketTransport transport(fast_reliability());
  transport.bind_metrics(&reg);
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 100);
  ASSERT_TRUE(transport.send(link, msg, 0).delivered);
  EXPECT_EQ(reg.counter("link.device0->edge.attempts").value(), 1);
  EXPECT_EQ(reg.counter("link.device0->edge.retries").value(), 0);
  EXPECT_EQ(reg.counter("link.device0->edge.timeouts").value(), 0);
  EXPECT_EQ(reg.counter("link.device0->edge.bytes").value(), 100);
}

TEST(TransportTelemetry, BreakerTripBooksGauges) {
  AckPeer peer(/*acks=*/false);
  obs::MetricsRegistry reg;
  SocketTransport transport(fast_reliability());
  transport.set_fail_fast(true);
  transport.bind_metrics(&reg);
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  const Message msg = sample_message(MessageKind::kClassScores, 12);
  EXPECT_FALSE(transport.send(link, msg, 0).delivered);
  EXPECT_TRUE(transport.channel_down(link.name()));
  EXPECT_EQ(reg.counter("transport.breaker_trips").value(), 1);
  EXPECT_EQ(reg.gauge("transport.channels_down").value(), 1.0);
  EXPECT_EQ(reg.counter("link.device0->edge.timeouts").value(), 1);
  EXPECT_EQ(reg.counter("link.device0->edge.bytes").value(), 0);
  // A second failed send on the tripped channel is not a second trip.
  EXPECT_FALSE(transport.send(link, msg, 1).delivered);
  EXPECT_EQ(reg.counter("transport.breaker_trips").value(), 1);
}

TEST(TransportTelemetry, HotPathProfileHooks) {
  // The frame codec and socket pump are instrumented; with profiling armed
  // a delivered send records encode/decode/CRC/flush/poll scopes.
  AckPeer peer;
  SocketTransport transport(fast_reliability());
  Link link("device0->edge");
  transport.attach(link.name(),
                   connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  obs::profile_reset();
  obs::set_profiling_enabled(true);
  const Message msg = sample_message(MessageKind::kBinaryFeatureMap, 64);
  const SendResult res = transport.send(link, msg, 0);
  obs::set_profiling_enabled(false);
  ASSERT_TRUE(res.delivered);
  EXPECT_GT(obs::profile_calls("transport.frame_encode"), 0);
  EXPECT_GT(obs::profile_calls("transport.frame_decode"), 0);  // the ACK
  EXPECT_GT(obs::profile_calls("transport.crc32"), 0);
  EXPECT_GT(obs::profile_calls("transport.flush"), 0);
  EXPECT_GT(obs::profile_calls("transport.poll"), 0);
}

// Conformance: a multi-megabyte message survives arbitrary read/write
// fragmentation (the frame layer reassembles across partial IO).
TEST(TransportConformance, SocketLargeMessageFraming) {
  AckPeer peer;
  SocketTransport transport(fast_reliability());
  ReliabilityConfig rel = fast_reliability();
  rel.timeout_s = 10.0;  // a 3 MiB frame takes longer than 200 ms
  SocketTransport big(rel);
  Link link("device0->cloud");
  big.attach(link.name(),
             connect_to("127.0.0.1:" + std::to_string(peer.port()), 5.0));
  const Message msg = sample_message(MessageKind::kRawImage, 3u << 20);
  const SendResult res = big.send(link, msg, 0);
  ASSERT_TRUE(res.delivered);
  ASSERT_EQ(peer.payloads().size(), 1u);
  EXPECT_EQ(peer.payloads()[0], msg.payload);
}

}  // namespace
}  // namespace ddnn::dist
