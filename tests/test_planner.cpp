// Memory-planner tests: interval packing (validity, bounds, exhaustive
// optimality on small plans), record/replay arena reuse, batch slicing under
// a hard memory budget, and the per-tier peak stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "infer/planner.hpp"
#include "infer/workspace.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ddnn {
namespace {

using infer::MemoryPlan;
using infer::PlanInterval;

/// Restores an unlimited memory budget when a test scope ends.
struct BudgetGuard {
  explicit BudgetGuard(std::int64_t bytes) { infer::set_mem_budget(bytes); }
  ~BudgetGuard() { infer::set_mem_budget(0); }
};

PlanInterval iv(std::int64_t numel, int def, int last_use) {
  PlanInterval i;
  i.numel = numel;
  i.def = def;
  i.last_use = last_use;
  return i;
}

/// Structural checks every packing must satisfy: lifetime-overlapping
/// intervals get disjoint byte ranges, the arena is exactly the highest
/// interval end, and packed sits between the live-peak lower bound and the
/// naive sum-of-sizes upper bound.
void expect_valid_packing(const MemoryPlan& plan) {
  std::int64_t naive = 0;
  std::int64_t end = 0;
  for (const auto& i : plan.intervals) {
    EXPECT_GE(i.offset, 0);
    naive += i.numel;
    end = std::max(end, i.offset + i.numel);
  }
  EXPECT_EQ(plan.naive_floats, naive);
  EXPECT_EQ(plan.arena_floats, end);
  EXPECT_LE(plan.arena_floats, plan.naive_floats);
  EXPECT_GE(plan.arena_floats, plan.live_peak_floats);
  for (std::size_t a = 0; a < plan.intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.intervals.size(); ++b) {
      const auto& x = plan.intervals[a];
      const auto& y = plan.intervals[b];
      if (!infer::intervals_overlap(x, y)) continue;
      const bool disjoint =
          x.offset + x.numel <= y.offset || y.offset + y.numel <= x.offset;
      EXPECT_TRUE(disjoint) << "intervals " << a << " and " << b
                            << " overlap in time and share bytes";
    }
  }
}

/// Exhaustive minimal arena size. Some optimal packing is left-justified —
/// every interval sits at offset 0 or flush against another interval's end
/// (shift each down until blocked) — so enumerating all placement orders
/// with those candidate offsets visits an optimal layout. Exponential; small
/// fixtures only.
std::int64_t brute_force_min_arena(const std::vector<PlanInterval>& ivs) {
  std::vector<std::size_t> order(ivs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end());
  std::int64_t best = 0;
  for (const auto& i : ivs) best += i.numel;  // naive layout always works
  do {
    std::vector<std::int64_t> offs(ivs.size(), -1);
    std::function<void(std::size_t, std::int64_t)> place =
        [&](std::size_t k, std::int64_t arena) {
          if (arena >= best) return;  // cannot improve
          if (k == order.size()) {
            best = arena;
            return;
          }
          const PlanInterval& cur = ivs[order[k]];
          std::vector<std::int64_t> cands{0};
          for (std::size_t p = 0; p < k; ++p) {
            cands.push_back(offs[order[p]] + ivs[order[p]].numel);
          }
          for (const std::int64_t off : cands) {
            bool ok = true;
            for (std::size_t p = 0; p < k && ok; ++p) {
              const PlanInterval& prev = ivs[order[p]];
              if (!infer::intervals_overlap(cur, prev)) continue;
              ok = off + cur.numel <= offs[order[p]] ||
                   offs[order[p]] + prev.numel <= off;
            }
            if (!ok) continue;
            offs[order[k]] = off;
            place(k + 1, std::max(arena, off + cur.numel));
          }
        };
    place(0, 0);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

// ----------------------------------------------------------- pack_plan unit

TEST(PackPlan, EmptyPlanIsEmptyArena) {
  const MemoryPlan plan = infer::pack_plan({});
  EXPECT_EQ(plan.arena_floats, 0);
  EXPECT_EQ(plan.naive_floats, 0);
  EXPECT_EQ(plan.live_peak_floats, 0);
}

TEST(PackPlan, PingPongChainReusesDeadBuffers) {
  // a -> b -> c, each step reading only its predecessor: a and c can share.
  const MemoryPlan plan =
      infer::pack_plan({iv(8, 0, 1), iv(8, 1, 2), iv(8, 2, 3)});
  expect_valid_packing(plan);
  EXPECT_EQ(plan.arena_floats, 16);
  EXPECT_EQ(plan.live_peak_floats, 16);
  EXPECT_EQ(plan.naive_floats, 24);
}

TEST(PackPlan, FullyOverlappingIntervalsCannotShare) {
  const MemoryPlan plan =
      infer::pack_plan({iv(4, 0, 3), iv(6, 1, 3), iv(2, 2, 3)});
  expect_valid_packing(plan);
  EXPECT_EQ(plan.arena_floats, 12);  // = naive: everything live at tick 3
}

TEST(PackPlan, SmallFixturesMatchExhaustiveOptimum) {
  const std::vector<std::vector<PlanInterval>> fixtures = {
      // Chain with a skip: ends share under the middle interval.
      {iv(4, 0, 1), iv(3, 1, 2), iv(4, 2, 3)},
      // Two disjoint mids under one long-lived buffer.
      {iv(2, 0, 5), iv(5, 1, 2), iv(3, 3, 4)},
      // Ping-pong with unequal sizes.
      {iv(8, 0, 1), iv(2, 1, 2), iv(8, 2, 3), iv(2, 3, 4)},
      // A wide fan: one producer read by three later consumers.
      {iv(6, 0, 3), iv(4, 1, 2), iv(4, 2, 3), iv(4, 3, 4)},
      // Everything overlaps everything.
      {iv(1, 0, 4), iv(2, 0, 4), iv(3, 0, 4), iv(4, 0, 4)},
  };
  for (std::size_t f = 0; f < fixtures.size(); ++f) {
    const MemoryPlan plan = infer::pack_plan(fixtures[f]);
    expect_valid_packing(plan);
    EXPECT_EQ(plan.arena_floats, brute_force_min_arena(fixtures[f]))
        << "fixture " << f;
  }
}

TEST(PackPlan, RandomRecordingShapedPlansPackValidly) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 12.0));
    std::vector<PlanInterval> ivs;
    for (int i = 0; i < n; ++i) {
      // Mimic a real recording: defs are the strictly-increasing acquire
      // ticks, last_use extends a bounded distance forward.
      const auto numel = 1 + static_cast<std::int64_t>(rng.uniform(0.0, 64.0));
      const int last =
          std::min(n - 1, i + static_cast<int>(rng.uniform(0.0, 4.0)));
      ivs.push_back(iv(numel, i, last));
    }
    expect_valid_packing(infer::pack_plan(ivs));
  }
}

// ----------------------------------------------------- record/replay arena

/// Four-step elementwise ping-pong chain; every intermediate reads only its
/// predecessor, so a planned arena holds exactly two live buffers.
std::vector<Tensor> pingpong_chain(const std::vector<Tensor>& in,
                                   infer::Workspace& ws) {
  Tensor a = ws.acquire(in[0].shape());
  ws.note_use(in[0]);
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = in[0][i] * 2.0f;
  Tensor b = ws.acquire(in[0].shape());
  ws.note_use(a);
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = a[i] + 1.0f;
  Tensor c = ws.acquire(in[0].shape());
  ws.note_use(b);
  for (std::int64_t i = 0; i < c.numel(); ++i) c[i] = b[i] * 0.5f;
  Tensor d = ws.acquire(in[0].shape());
  ws.note_use(c);
  for (std::int64_t i = 0; i < d.numel(); ++i) d[i] = c[i] - 3.0f;
  return {d};
}

TEST(RunSection, ReplaysBitIdenticallyInsideTwoBufferArena) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kEdge,
                                infer::next_section_id(), "pingpong"};
  Rng rng(5);
  const Tensor x = Tensor::randn(Shape{4, 16}, rng);

  infer::reset_plan_stats();
  const auto rec = infer::run_section(ws, desc, {x}, "", pingpong_chain);
  const std::size_t warm = ws.alloc_count();
  const auto rep = infer::run_section(ws, desc, {x}, "", pingpong_chain);

  ASSERT_EQ(rec.size(), 1u);
  ASSERT_EQ(rec[0].shape(), x.shape());
  EXPECT_EQ(0, std::memcmp(rec[0].data(), rep[0].data(),
                           static_cast<std::size_t>(x.numel()) *
                               sizeof(float)));
  // Replay allocates nothing (record pass already built the arena)...
  EXPECT_EQ(ws.alloc_count(), warm);
  // ...and the executed plan packed four equal intermediates into two:
  // packed peak strictly below the naive sum, reported per tier in bytes.
  const auto stats = infer::plan_stats();
  const std::int64_t buf = x.numel() * static_cast<std::int64_t>(sizeof(float));
  EXPECT_EQ(stats.edge_peak_bytes, 2 * buf);
  EXPECT_EQ(stats.device_peak_bytes, 0);
  EXPECT_EQ(stats.cloud_peak_bytes, 0);
}

TEST(RunSection, PeakStatsTakeMaxAcrossTiersAndReset) {
  infer::reset_plan_stats();
  infer::note_plan_peak(infer::SectionTier::kDevice, 100);
  infer::note_plan_peak(infer::SectionTier::kDevice, 40);  // ignored: smaller
  infer::note_plan_peak(infer::SectionTier::kCloud, 7);
  const auto stats = infer::plan_stats();
  EXPECT_EQ(stats.device_peak_bytes, 100);
  EXPECT_EQ(stats.edge_peak_bytes, 0);
  EXPECT_EQ(stats.cloud_peak_bytes, 7);
  EXPECT_EQ(stats.peak(infer::SectionTier::kDevice), 100);
  infer::reset_plan_stats();
  EXPECT_EQ(infer::plan_stats().device_peak_bytes, 0);
}

// --------------------------------------------------------- budget slicing

TEST(Budget, SlicesBatchToFitAndStitchesBitIdentically) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "sliced"};
  Rng rng(19);
  const Tensor x = Tensor::randn(Shape{8, 16}, rng);
  const std::int64_t row_bytes = 16 * static_cast<std::int64_t>(sizeof(float));

  // Unbudgeted reference: full-batch plan, arena = 2 buffers of 8 rows.
  infer::reset_plan_stats();
  const auto ref = infer::run_section(ws, desc, {x}, "", pingpong_chain);
  EXPECT_EQ(infer::plan_stats().device_peak_bytes, 2 * 8 * row_bytes);

  // Budget for two buffers of two rows: the batch must be sliced 8 -> 2.
  BudgetGuard guard(2 * 2 * row_bytes);
  infer::reset_plan_stats();
  const auto got = infer::run_section(ws, desc, {x}, "", pingpong_chain);
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].shape(), x.shape());
  EXPECT_EQ(0, std::memcmp(ref[0].data(), got[0].data(),
                           static_cast<std::size_t>(x.numel()) *
                               sizeof(float)));
  const auto stats = infer::plan_stats();
  EXPECT_GT(stats.device_peak_bytes, 0);
  EXPECT_LE(stats.device_peak_bytes, 2 * 2 * row_bytes);

  // Warm sliced passes reuse the cached chunk plans: no new allocations.
  const std::size_t warm = ws.alloc_count();
  infer::run_section(ws, desc, {x}, "", pingpong_chain);
  EXPECT_EQ(ws.alloc_count(), warm);
}

TEST(Budget, RemainderChunkGetsItsOwnPlan) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "remainder"};
  Rng rng(23);
  const Tensor x = Tensor::randn(Shape{5, 6}, rng);
  const auto ref = infer::run_section(ws, desc, {x}, "", pingpong_chain);

  // Budget for two 2-row buffers: chunks of 2, 2 and a 1-row remainder.
  BudgetGuard guard(2 * 2 * 6 * static_cast<std::int64_t>(sizeof(float)));
  const auto got = infer::run_section(ws, desc, {x}, "", pingpong_chain);
  ASSERT_EQ(got[0].shape(), x.shape());
  EXPECT_EQ(0, std::memcmp(ref[0].data(), got[0].data(),
                           static_cast<std::size_t>(x.numel()) *
                               sizeof(float)));
}

TEST(Budget, InfeasibleBudgetNamesTheSectionAndBothSizes) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kCloud,
                                infer::next_section_id(), "tiny_budget"};
  Rng rng(29);
  const Tensor x = Tensor::randn(Shape{4, 16}, rng);

  // Even a single-row slice needs 2 * 16 floats = 128 B; ask for 8 B.
  BudgetGuard guard(8);
  try {
    infer::run_section(ws, desc, {x}, "", pingpong_chain);
    FAIL() << "expected an infeasible-budget error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tiny_budget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--mem-budget"), std::string::npos) << msg;
  }
}

TEST(Budget, NegativeBudgetIsRejected) {
  EXPECT_THROW(infer::set_mem_budget(-1), Error);
  EXPECT_EQ(infer::mem_budget(), 0);
}

TEST(Budget, ChangingTheBudgetInvalidatesCachedSliceDecisions) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "rebudget"};
  Rng rng(31);
  const Tensor x = Tensor::randn(Shape{8, 4}, rng);
  const auto ref = infer::run_section(ws, desc, {x}, "", pingpong_chain);

  const std::int64_t row_bytes = 4 * static_cast<std::int64_t>(sizeof(float));
  for (const std::int64_t rows : {4, 1, 2}) {
    BudgetGuard guard(2 * rows * row_bytes);
    const auto got = infer::run_section(ws, desc, {x}, "", pingpong_chain);
    ASSERT_EQ(got[0].shape(), x.shape());
    EXPECT_EQ(0, std::memcmp(ref[0].data(), got[0].data(),
                             static_cast<std::size_t>(x.numel()) *
                                 sizeof(float)))
        << "rows=" << rows;
  }
}

}  // namespace
}  // namespace ddnn
