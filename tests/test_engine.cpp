// Inference-engine parity: the plan engine (workspace + cached bit-packed
// weights + XNOR-popcount kernels) must be bit-identical to the autograd
// forward pass across the configuration grid — presets, edge tiers,
// precision modes, activity masks and thread counts — and the packed-weight
// cache must track every in-place parameter update.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "dist/runtime.hpp"
#include "infer/engine.hpp"
#include "infer/workspace.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "tensor/bitgemm.hpp"
#include "tensor/bitpack.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ddnn {
namespace {

using autograd::Variable;
using core::DdnnConfig;
using core::DdnnModel;
using core::HierarchyPreset;

/// Pins the engine for a scope, then restores the DDNN_ENGINE default.
struct EngineGuard {
  explicit EngineGuard(infer::EngineKind k) { infer::set_engine_kind(k); }
  ~EngineGuard() { infer::clear_engine_override(); }
};

/// Pins the pool size for a scope, then restores the env/hardware default.
struct PoolSizeGuard {
  explicit PoolSizeGuard(int n) { ThreadPool::set_size(n); }
  ~PoolSizeGuard() { ThreadPool::set_size(0); }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) *
                               sizeof(float)));
}

Tensor signs_of(const Tensor& t) {
  Tensor out(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    out[i] = t[i] < 0.0f ? -1.0f : 1.0f;
  }
  return out;
}

// -------------------------------------------------------- engine selection

TEST(Engine, ParsesAndRoundTripsNames) {
  EXPECT_EQ(infer::parse_engine_kind("plan"), infer::EngineKind::kPlan);
  EXPECT_EQ(infer::parse_engine_kind("autograd"), infer::EngineKind::kAutograd);
  EXPECT_THROW(infer::parse_engine_kind("fast"), Error);
  EXPECT_EQ(infer::to_string(infer::EngineKind::kPlan), "plan");
  EXPECT_EQ(infer::to_string(infer::EngineKind::kAutograd), "autograd");
}

TEST(Engine, OverrideWinsAndClears) {
  {
    EngineGuard guard(infer::EngineKind::kAutograd);
    EXPECT_EQ(infer::engine_kind(), infer::EngineKind::kAutograd);
  }
  {
    EngineGuard guard(infer::EngineKind::kPlan);
    EXPECT_EQ(infer::engine_kind(), infer::EngineKind::kPlan);
  }
}

// ---------------------------------------------------------------- workspace

/// Restores poison to the DDNN_POISON env default when a test scope ends.
struct PoisonGuard {
  explicit PoisonGuard(bool on) { infer::set_poison(on); }
  ~PoisonGuard() { infer::clear_poison_override(); }
};

/// Restores an unlimited memory budget when a test scope ends.
struct BudgetGuard {
  explicit BudgetGuard(std::int64_t bytes) { infer::set_mem_budget(bytes); }
  ~BudgetGuard() { infer::set_mem_budget(0); }
};

/// Doubles the input then adds one, drawing both intermediates from the
/// workspace with the acquire-then-note_use kernel discipline.
std::vector<Tensor> double_plus_one(const std::vector<Tensor>& in,
                                    infer::Workspace& ws) {
  Tensor mid = ws.acquire(in[0].shape());
  ws.note_use(in[0]);
  for (std::int64_t i = 0; i < mid.numel(); ++i) mid[i] = in[0][i] * 2.0f;
  Tensor out = ws.acquire(in[0].shape());
  ws.note_use(mid);
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = mid[i] + 1.0f;
  return {out};
}

TEST(Workspace, AlternatingBatchSignaturesReplayWithoutAllocating) {
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "ws_alternate"};
  Rng rng(7);
  const Tensor big = Tensor::randn(Shape{6, 4}, rng);
  const Tensor small = Tensor::randn(Shape{2, 4}, rng);

  // First sight of each batch shape records a plan and allocates its arena.
  const auto big_ref = infer::run_section(ws, desc, {big}, "", double_plus_one);
  const auto small_ref =
      infer::run_section(ws, desc, {small}, "", double_plus_one);
  EXPECT_EQ(ws.plans(), 2u);
  const std::size_t warm = ws.alloc_count();

  // The bug this pins: alternating batch shapes used to reallocate every
  // workspace slot on every pass. Warm passes must replay the per-signature
  // plans bit-identically with zero new allocations.
  for (int pass = 0; pass < 3; ++pass) {
    const auto b = infer::run_section(ws, desc, {big}, "", double_plus_one);
    const auto s = infer::run_section(ws, desc, {small}, "", double_plus_one);
    expect_bitwise_equal(b[0], big_ref[0]);
    expect_bitwise_equal(s[0], small_ref[0]);
  }
  EXPECT_EQ(ws.alloc_count(), warm);
  EXPECT_EQ(ws.plans(), 2u);
}

TEST(Workspace, PoisonCatchesViewLeakedPastSectionEnd) {
  PoisonGuard poison(true);
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "ws_leak"};
  Tensor leaked;
  auto leaky = [&leaked](const std::vector<Tensor>& in, infer::Workspace& w) {
    auto outs = double_plus_one(in, w);
    leaked = outs[0];  // contract violation: keeps an arena view alive
    return outs;
  };
  Rng rng(8);
  const Tensor x = Tensor::randn(Shape{3, 5}, rng);

  infer::run_section(ws, desc, {x}, "", leaky);         // record pass
  const auto outs = infer::run_section(ws, desc, {x}, "", leaky);  // replay
  // The section's real outputs are deep copies and stay finite...
  for (std::int64_t i = 0; i < outs[0].numel(); ++i) {
    EXPECT_FALSE(std::isnan(outs[0][i])) << i;
  }
  // ...but the escaped arena view reads signaling NaNs, not recycled data.
  ASSERT_EQ(leaked.numel(), x.numel());
  for (std::int64_t i = 0; i < leaked.numel(); ++i) {
    EXPECT_TRUE(std::isnan(leaked[i])) << i;
  }
}

// ---------------------------------------- activation kernels on non-finite

TEST(Kernels, ActivationsMatchAutogradBitwiseOnNonFiniteInput) {
  Tensor x(Shape{2, 4});
  const float vals[] = {std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity(),
                        -0.0f,
                        0.0f,
                        -3.5f,
                        2.25f,
                        1e30f};
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = vals[i];

  autograd::NoGradGuard no_grad;
  const Tensor relu_ref = autograd::relu(Variable(x)).value();
  const Tensor sign_ref = autograd::binarize(Variable(x)).value();

  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "nonfinite_act"};
  auto body = [](const std::vector<Tensor>& in, infer::Workspace& w) {
    return std::vector<Tensor>{nn::relu_tensor(in[0], w),
                               nn::sign_tensor(in[0], w)};
  };
  // Record and replay paths must both match the autograd forward bit for
  // bit — including NaN -> 0 under relu's (a < b) ? b : a semantics.
  for (int pass = 0; pass < 2; ++pass) {
    const auto outs = infer::run_section(ws, desc, {x}, "", body);
    expect_bitwise_equal(outs[0], relu_ref);
    expect_bitwise_equal(outs[1], sign_ref);
  }
}

// --------------------------------------------------- bitpack validation

TEST(Bitpack, RejectsEmptyAndMismatchedInputs) {
  EXPECT_THROW(pack_signs(Tensor()), Error);
  EXPECT_THROW(pack_signs(Tensor(Shape{0})), Error);
  EXPECT_THROW(unpack_signs({}, Shape{0}), Error);
  // 9 elements need 2 bytes; 1 byte must be rejected loudly.
  EXPECT_THROW(unpack_signs(std::vector<std::uint8_t>{0xff}, Shape{9}), Error);
  // Round trip still works for well-formed input.
  Rng rng(3);
  const Tensor t = signs_of(Tensor::randn(Shape{3, 7}, rng));
  expect_bitwise_equal(unpack_signs(pack_signs(t), t.shape()), t);
}

// ------------------------------------------------------- bitgemm kernels

TEST(Bitgemm, XnorLinearMatchesMatmulNt) {
  Rng rng(11);
  const Tensor x = signs_of(Tensor::randn(Shape{5, 130}, rng));
  const Tensor wf = Tensor::randn(Shape{9, 130}, rng);
  const Tensor wsg = signs_of(wf);
  const auto packed = bitgemm::pack_signs_matrix(wf.data(), 9, 130);
  ASSERT_TRUE(bitgemm::all_pm1(x));
  Tensor out(Shape{5, 9});
  bitgemm::xnor_linear(x, packed.bits, out);
  expect_bitwise_equal(out, ops::matmul_nt(x, wsg));
}

TEST(Bitgemm, SignLinearMatchesMatmulNtOnFloatInput) {
  Rng rng(12);
  const Tensor x = Tensor::randn(Shape{6, 75}, rng);
  const Tensor wf = Tensor::randn(Shape{10, 75}, rng);
  const auto packed = bitgemm::pack_signs_matrix(wf.data(), 10, 75);
  Tensor out(Shape{6, 10});
  bitgemm::sign_linear(x, packed, out);
  expect_bitwise_equal(out, ops::matmul_nt(x, signs_of(wf)));
}

TEST(Bitgemm, XnorConv2dMatchesAutogradConvOnSignInput) {
  Rng rng(13);
  const Tensor x = signs_of(Tensor::randn(Shape{2, 3, 8, 8}, rng));
  const Tensor wf = Tensor::randn(Shape{4, 3, 3, 3}, rng);
  const Conv2dGeometry g{.in_channels = 3, .in_h = 8, .in_w = 8};
  const auto packed = bitgemm::pack_signs_matrix(wf.data(), 4, g.patch_size());
  Tensor out(Shape{2, 4, g.out_h(), g.out_w()});
  bitgemm::xnor_conv2d(x, g, packed.bits, out);

  autograd::NoGradGuard no_grad;
  const Tensor ref =
      autograd::conv2d(Variable(x), Variable(signs_of(wf)), Variable(), 1, 1)
          .value();
  expect_bitwise_equal(out, ref);
}

TEST(Bitgemm, SignConv2dMatchesAutogradConvOnFloatInput) {
  Rng rng(14);
  const Tensor x = Tensor::rand_uniform(Shape{2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor wf = Tensor::randn(Shape{5, 3, 3, 3}, rng);
  const Conv2dGeometry g{.in_channels = 3, .in_h = 8, .in_w = 8};
  const auto packed = bitgemm::pack_signs_matrix(wf.data(), 5, g.patch_size());
  Tensor out(Shape{2, 5, g.out_h(), g.out_w()});
  bitgemm::sign_conv2d(x, g, packed, out);

  autograd::NoGradGuard no_grad;
  const Tensor ref =
      autograd::conv2d(Variable(x), Variable(signs_of(wf)), Variable(), 1, 1)
          .value();
  expect_bitwise_equal(out, ref);
}

// ------------------------------------------- full-model engine parity grid

std::vector<Variable> parity_views(int n, std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Variable> views;
  for (int i = 0; i < n; ++i) {
    views.emplace_back(
        Tensor::rand_uniform(Shape{2, 3, 32, 32}, rng, 0.0f, 1.0f));
  }
  return views;
}

core::DdnnOutputs run_engine(DdnnModel& model,
                             const std::vector<Variable>& views,
                             const std::vector<bool>& active,
                             infer::EngineKind kind) {
  EngineGuard engine(kind);
  autograd::NoGradGuard no_grad;
  return model.forward(views, active);
}

void expect_outputs_bitwise_equal(const core::DdnnOutputs& a,
                                  const core::DdnnOutputs& b) {
  ASSERT_EQ(a.exit_logits.size(), b.exit_logits.size());
  for (std::size_t e = 0; e < a.exit_logits.size(); ++e) {
    expect_bitwise_equal(a.exit_logits[e].value(), b.exit_logits[e].value());
  }
  ASSERT_EQ(a.device_features.size(), b.device_features.size());
  for (std::size_t d = 0; d < a.device_features.size(); ++d) {
    expect_bitwise_equal(a.device_features[d].value(),
                         b.device_features[d].value());
  }
  ASSERT_EQ(a.edge_features.size(), b.edge_features.size());
  for (std::size_t g = 0; g < a.edge_features.size(); ++g) {
    expect_bitwise_equal(a.edge_features[g].value(),
                         b.edge_features[g].value());
  }
}

using ParityParam = std::tuple<HierarchyPreset, bool>;  // preset, float_cloud

class EngineParityGrid : public ::testing::TestWithParam<ParityParam> {};

TEST_P(EngineParityGrid, ExitLogitsBitIdenticalAcrossEnginesAndThreads) {
  const auto [preset, float_cloud] = GetParam();
  auto cfg = DdnnConfig::preset(preset);
  cfg.float_cloud = float_cloud;
  cfg.validate();
  DdnnModel model(cfg);
  model.set_training(false);
  const auto views = parity_views(cfg.num_devices);

  std::vector<std::vector<bool>> masks;
  masks.emplace_back(static_cast<std::size_t>(cfg.num_devices), true);
  if (cfg.num_devices > 1) {
    // Fail the first and the last device (separately): exercises the
    // masked paths of every aggregator under both engines.
    for (const int failed : {0, cfg.num_devices - 1}) {
      std::vector<bool> m(static_cast<std::size_t>(cfg.num_devices), true);
      m[static_cast<std::size_t>(failed)] = false;
      masks.push_back(std::move(m));
    }
  }

  for (const int threads : {1, 4}) {
    PoolSizeGuard pool(threads);
    for (const auto& mask : masks) {
      const auto ref =
          run_engine(model, views, mask, infer::EngineKind::kAutograd);
      const auto got = run_engine(model, views, mask, infer::EngineKind::kPlan);
      expect_outputs_bitwise_equal(ref, got);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, EngineParityGrid,
    ::testing::Combine(::testing::Values(HierarchyPreset::kCloudOnly,
                                         HierarchyPreset::kDeviceCloud,
                                         HierarchyPreset::kDevicesCloud,
                                         HierarchyPreset::kDevicesEdgesCloud),
                       ::testing::Bool()));

TEST(EngineParity, AggregationSchemesBitIdenticalAcrossEngines) {
  for (const auto local : {core::AggKind::kMaxPool, core::AggKind::kAvgPool,
                           core::AggKind::kConcat, core::AggKind::kGatedAvg}) {
    for (const auto cloud :
         {core::AggKind::kMaxPool, core::AggKind::kAvgPool,
          core::AggKind::kConcat, core::AggKind::kGatedAvg}) {
      auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 3);
      cfg.local_agg = local;
      cfg.cloud_agg = cloud;
      cfg.validate();
      DdnnModel model(cfg);
      model.set_training(false);
      const auto views = parity_views(cfg.num_devices);
      const std::vector<bool> mask{true, false, true};
      const auto ref =
          run_engine(model, views, mask, infer::EngineKind::kAutograd);
      const auto got =
          run_engine(model, views, mask, infer::EngineKind::kPlan);
      expect_outputs_bitwise_equal(ref, got);
    }
  }
}

TEST(EngineParity, MemBudgetSlicingBitIdenticalToUnbudgetedRun) {
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesEdgesCloud);
  cfg.validate();
  DdnnModel model(cfg);
  model.set_training(false);
  const auto views = parity_views(cfg.num_devices);
  const std::vector<bool> all(static_cast<std::size_t>(cfg.num_devices), true);

  // Unbudgeted reference, plus the full-batch peak the budget must undercut.
  const auto ref = run_engine(model, views, all, infer::EngineKind::kAutograd);
  infer::reset_plan_stats();
  const auto full = run_engine(model, views, all, infer::EngineKind::kPlan);
  expect_outputs_bitwise_equal(ref, full);
  const auto full_stats = infer::plan_stats();
  const std::int64_t full_peak =
      std::max({full_stats.device_peak_bytes, full_stats.edge_peak_bytes,
                full_stats.cloud_peak_bytes});
  ASSERT_GT(full_peak, 0);

  // Single-row plans bound what the minimal slice needs, so a budget at the
  // single-row peak is feasible — and (batch 2) strictly below full_peak.
  infer::reset_plan_stats();
  const auto row_views = parity_views(cfg.num_devices, 6);
  std::vector<Variable> one_row;
  for (const auto& v : row_views) {
    one_row.emplace_back(v.value().narrow0(0, 1).clone());
  }
  run_engine(model, one_row, all, infer::EngineKind::kPlan);
  const auto row_stats = infer::plan_stats();
  const std::int64_t budget =
      std::max({row_stats.device_peak_bytes, row_stats.edge_peak_bytes,
                row_stats.cloud_peak_bytes});
  ASSERT_GT(budget, 0);
  ASSERT_LT(budget, full_peak);

  BudgetGuard guard(budget);
  for (const int threads : {1, 4}) {
    PoolSizeGuard pool(threads);
    infer::reset_plan_stats();
    const auto sliced = run_engine(model, views, all, infer::EngineKind::kPlan);
    expect_outputs_bitwise_equal(ref, sliced);
    // Every executed section stayed under the budget.
    const auto stats = infer::plan_stats();
    EXPECT_LE(stats.device_peak_bytes, budget);
    EXPECT_LE(stats.edge_peak_bytes, budget);
    EXPECT_LE(stats.cloud_peak_bytes, budget);
  }
}

TEST(EngineParity, PoisonModeKeepsEverySectionBitIdentical) {
  // Audits all plan-engine sections: with poisoned arenas, any kernel that
  // read recycled or unwritten workspace bytes would surface NaNs and break
  // parity with the autograd forward.
  PoisonGuard poison(true);
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesEdgesCloud);
  cfg.validate();
  DdnnModel model(cfg);
  model.set_training(false);
  const auto views = parity_views(cfg.num_devices, 9);
  std::vector<bool> mask(static_cast<std::size_t>(cfg.num_devices), true);
  mask[0] = false;
  const auto ref = run_engine(model, views, mask, infer::EngineKind::kAutograd);
  for (int pass = 0; pass < 2; ++pass) {  // record pass, then poisoned replay
    const auto got = run_engine(model, views, mask, infer::EngineKind::kPlan);
    expect_outputs_bitwise_equal(ref, got);
  }
}

// --------------------------------------- evaluation + runtime trace parity

TEST(EngineParity, EvaluateExitsBitIdenticalAcrossEngines) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 4;
  data_cfg.test_samples = 24;
  data_cfg.seed = 31;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  auto eval_with = [&](infer::EngineKind kind) {
    EngineGuard engine(kind);
    return core::evaluate_exits(model, dataset.test(), devices, 8);
  };
  const auto ref = eval_with(infer::EngineKind::kAutograd);
  const auto got = eval_with(infer::EngineKind::kPlan);
  ASSERT_EQ(ref.num_exits(), got.num_exits());
  EXPECT_EQ(ref.labels, got.labels);
  for (std::size_t e = 0; e < ref.num_exits(); ++e) {
    expect_bitwise_equal(ref.exit_probs[e], got.exit_probs[e]);
  }
}

TEST(EngineParity, HierarchyRuntimeTracesIdenticalAcrossEngines) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 4;
  data_cfg.test_samples = 16;
  data_cfg.seed = 77;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  auto traces_with = [&](infer::EngineKind kind) {
    EngineGuard engine(kind);
    dist::HierarchyRuntime runtime(model, {0.5}, devices);
    std::vector<dist::InferenceTrace> traces;
    for (const auto& sample : dataset.test()) {
      traces.push_back(runtime.classify(sample));
    }
    return traces;
  };
  const auto ref = traces_with(infer::EngineKind::kAutograd);
  const auto got = traces_with(infer::EngineKind::kPlan);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].exit_taken, got[i].exit_taken) << i;
    EXPECT_EQ(ref[i].prediction, got[i].prediction) << i;
    // Identical logits -> identical doubles, not merely close.
    EXPECT_EQ(ref[i].entropy, got[i].entropy) << i;
  }
}

// ----------------------------------------------- packed-cache invalidation

TEST(EngineParity, PackedCacheTracksOptimizerUpdates) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 16;
  data_cfg.test_samples = 4;
  data_cfg.seed = 9;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 3);
  DdnnModel model(cfg);
  const std::vector<int> devices{0, 1, 2};
  const auto views = parity_views(cfg.num_devices, 21);
  const std::vector<bool> all(static_cast<std::size_t>(cfg.num_devices), true);

  // Populate the packed caches from the initial weights...
  model.set_training(false);
  expect_outputs_bitwise_equal(
      run_engine(model, views, all, infer::EngineKind::kAutograd),
      run_engine(model, views, all, infer::EngineKind::kPlan));

  // ...then update every parameter in place through the real optimizer. A
  // stale pack would keep serving the old signs.
  model.set_training(true);
  core::TrainConfig train_cfg;
  train_cfg.epochs = 1;
  train_cfg.batch_size = 8;
  core::train_ddnn(model, dataset.train(), devices, train_cfg);

  model.set_training(false);
  expect_outputs_bitwise_equal(
      run_engine(model, views, all, infer::EngineKind::kAutograd),
      run_engine(model, views, all, infer::EngineKind::kPlan));
}

TEST(EngineParity, PackedCacheTracksLoadState) {
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 3);
  DdnnModel donor(cfg);
  DdnnConfig other = cfg;
  other.init_seed = cfg.init_seed + 101;
  DdnnModel receiver(other);
  donor.set_training(false);
  receiver.set_training(false);

  const auto views = parity_views(cfg.num_devices, 22);
  const std::vector<bool> all(static_cast<std::size_t>(cfg.num_devices), true);
  // Build the receiver's packed caches from its own (different) weights.
  run_engine(receiver, views, all, infer::EngineKind::kPlan);

  const std::string path = ::testing::TempDir() + "/ddnn_engine_state.bin";
  nn::save_state(donor, path);
  nn::load_state(receiver, path);

  const auto ref = run_engine(donor, views, all, infer::EngineKind::kAutograd);
  const auto got = run_engine(receiver, views, all, infer::EngineKind::kPlan);
  expect_outputs_bitwise_equal(ref, got);
}

}  // namespace
}  // namespace ddnn
