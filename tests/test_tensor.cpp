#include <gtest/gtest.h>

#include <cmath>

#include "tensor/bitpack.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ddnn {
namespace {

TEST(Shape, NumelAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.ndim(), 3u);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_THROW(s.dim(3), Error);
  EXPECT_THROW(s.dim(-4), Error);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).to_string(), "[1, 2]");
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::full(Shape{2}, 1.0f);
  Tensor shared = a;
  Tensor deep = a.clone();
  a[0] = 5.0f;
  EXPECT_EQ(shared[0], 5.0f);
  EXPECT_EQ(deep[0], 1.0f);
}

TEST(Tensor, ReshapeSharesStorageAndChecksNumel) {
  Tensor a = Tensor::full(Shape{2, 3}, 2.0f);
  Tensor b = a.reshape(Shape{3, 2});
  b.at(0, 0) = 9.0f;
  EXPECT_EQ(a.at(0, 0), 9.0f);
  EXPECT_THROW(a.reshape(Shape{4}), Error);
}

TEST(Tensor, FromVectorValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, AtIndexing4d) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[(((1 * 3) + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, AllcloseDetectsDifferences) {
  Tensor a = Tensor::full(Shape{3}, 1.0f);
  Tensor b = Tensor::full(Shape{3}, 1.0f);
  EXPECT_TRUE(a.allclose(b));
  b[1] = 1.1f;
  EXPECT_FALSE(a.allclose(b));
  EXPECT_TRUE(a.allclose(b, 0.2f));
  EXPECT_FALSE(a.allclose(Tensor::full(Shape{4}, 1.0f)));
}

TEST(TensorOps, ElementwiseArithmetic) {
  const Tensor a = Tensor::from_vector(Shape{4}, {1, 2, 3, 4});
  const Tensor b = Tensor::from_vector(Shape{4}, {4, 3, 2, 1});
  EXPECT_TRUE(ops::add(a, b).allclose(Tensor::full(Shape{4}, 5.0f)));
  EXPECT_TRUE(ops::sub(a, b).allclose(
      Tensor::from_vector(Shape{4}, {-3, -1, 1, 3})));
  EXPECT_TRUE(ops::mul(a, b).allclose(
      Tensor::from_vector(Shape{4}, {4, 6, 6, 4})));
  EXPECT_TRUE(ops::div(a, b).allclose(
      Tensor::from_vector(Shape{4}, {0.25f, 2.0f / 3.0f, 1.5f, 4.0f})));
  EXPECT_THROW(ops::add(a, Tensor(Shape{3})), Error);
}

TEST(TensorOps, ScalarAndUnary) {
  const Tensor a = Tensor::from_vector(Shape{3}, {-2, 0, 2});
  EXPECT_TRUE(ops::add_scalar(a, 1.0f)
                  .allclose(Tensor::from_vector(Shape{3}, {-1, 1, 3})));
  EXPECT_TRUE(ops::mul_scalar(a, -2.0f)
                  .allclose(Tensor::from_vector(Shape{3}, {4, 0, -4})));
  EXPECT_TRUE(ops::neg(a).allclose(Tensor::from_vector(Shape{3}, {2, 0, -2})));
  EXPECT_TRUE(ops::clamp(a, -1.0f, 1.0f)
                  .allclose(Tensor::from_vector(Shape{3}, {-1, 0, 1})));
}

TEST(TensorOps, SignConventionAtZero) {
  const Tensor a = Tensor::from_vector(Shape{4}, {-0.5f, 0.0f, 0.5f, -0.0f});
  const Tensor s = ops::sign(a);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 1.0f);  // sign(0) = +1 so binarized values are in {-1,+1}
  EXPECT_EQ(s[2], 1.0f);
  EXPECT_EQ(s[3], 1.0f);
}

TEST(TensorOps, AxpyAccumulates) {
  Tensor y = Tensor::full(Shape{3}, 1.0f);
  const Tensor x = Tensor::from_vector(Shape{3}, {1, 2, 3});
  ops::axpy_into(y, 2.0f, x);
  EXPECT_TRUE(y.allclose(Tensor::from_vector(Shape{3}, {3, 5, 7})));
}

TEST(TensorOps, MatmulAgainstHandComputed) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_vector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(c.allclose(Tensor::from_vector(Shape{2, 2}, {58, 64, 139, 154})));
}

TEST(TensorOps, MatmulVariantsAgree) {
  Rng rng(5);
  const Tensor a = Tensor::randn(Shape{4, 6}, rng);
  const Tensor b = Tensor::randn(Shape{6, 5}, rng);
  const Tensor ref = ops::matmul(a, b);
  // A^T with transposed input must give the same product.
  EXPECT_TRUE(ops::matmul_tn(ops::transpose2d(a), b).allclose(ref, 1e-4f));
  EXPECT_TRUE(ops::matmul_nt(a, ops::transpose2d(b)).allclose(ref, 1e-4f));
}

TEST(TensorOps, MatmulShapeChecks) {
  EXPECT_THROW(ops::matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})), Error);
  EXPECT_THROW(ops::matmul(Tensor(Shape{2}), Tensor(Shape{2, 2})), Error);
}

TEST(TensorOps, Reductions) {
  const Tensor a = Tensor::from_vector(Shape{2, 2}, {1, -2, 3, 4});
  EXPECT_FLOAT_EQ(ops::sum_all(a), 6.0f);
  EXPECT_FLOAT_EQ(ops::mean_all(a), 1.5f);
  EXPECT_FLOAT_EQ(ops::max_all(a), 4.0f);
}

TEST(TensorOps, ArgmaxRowsTiesGoFirst) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 3, 3, 5, 2, 1});
  const auto idx = ops::argmax_rows(a);
  EXPECT_EQ(idx[0], 1);  // first of the tied maxima
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOps, SoftmaxRowsIsNormalizedAndStable) {
  const Tensor a =
      Tensor::from_vector(Shape{2, 3}, {1000, 1001, 1002, -5, 0, 5});
  const Tensor p = ops::softmax_rows(a);
  for (std::int64_t i = 0; i < 2; ++i) {
    float sum = 0;
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));  // larger logit, larger probability
}

TEST(TensorOps, RowVectorBroadcastAndItsAdjoint) {
  const Tensor x = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
  const Tensor y = ops::add_row_vector(x, b);
  EXPECT_TRUE(
      y.allclose(Tensor::from_vector(Shape{2, 3}, {11, 22, 33, 14, 25, 36})));
  EXPECT_TRUE(
      ops::sum_rows(x).allclose(Tensor::from_vector(Shape{3}, {5, 7, 9})));
}

// ---------------------------------------------------------------- im2col

TEST(Im2col, GeometryOutputSizes) {
  Conv2dGeometry g{.in_channels = 3, .in_h = 32, .in_w = 32};
  EXPECT_EQ(g.out_h(), 32);  // 3x3 s1 p1 preserves size
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 16);  // 3x3 s2 p1 halves (the ConvP pool geometry)
}

TEST(Im2col, ExtractsCorrectPatch) {
  // 1x1x3x3 image with distinct values; center patch of a 3x3 kernel at
  // (1,1) must be the image itself.
  Tensor x = Tensor::from_vector(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Conv2dGeometry g{.in_channels = 1, .in_h = 3, .in_w = 3};
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), Shape({9, 9}));
  // Row for output position (1,1): full 3x3 neighbourhood.
  for (int k = 0; k < 9; ++k) {
    EXPECT_FLOAT_EQ(cols.at(4, k), static_cast<float>(k + 1));
  }
  // Row for output position (0,0): top-left corner padded with zeros.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);  // (-1,-1) out of bounds
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);  // centre hits pixel (0,0)
}

TEST(Im2col, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the transpose, which is exactly what conv backward relies on.
  Rng rng(9);
  Conv2dGeometry g{.in_channels = 2, .in_h = 6, .in_w = 5,
                   .kernel_h = 3, .kernel_w = 3, .stride = 2, .pad = 1};
  const Tensor x = Tensor::randn(Shape{2, 2, 6, 5}, rng);
  const Tensor cols = im2col(x, g);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, g, 2);

  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, RejectsMismatchedGeometry) {
  Conv2dGeometry g{.in_channels = 3, .in_h = 8, .in_w = 8};
  EXPECT_THROW(im2col(Tensor(Shape{1, 2, 8, 8}), g), Error);
  EXPECT_THROW(im2col(Tensor(Shape{3, 8, 8}), g), Error);
}

// ---------------------------------------------------------------- bitpack

TEST(Bitpack, PackedSize) {
  EXPECT_EQ(packed_size_bytes(0), 0);
  EXPECT_EQ(packed_size_bytes(1), 1);
  EXPECT_EQ(packed_size_bytes(8), 1);
  EXPECT_EQ(packed_size_bytes(9), 2);
  EXPECT_EQ(packed_size_bytes(1024), 128);  // f=4 * 16x16 = Eq.1's 128 B
}

TEST(Bitpack, RoundTripIsExact) {
  Rng rng(21);
  for (const auto n : {1, 7, 8, 9, 64, 100, 1024}) {
    Tensor t = ops::sign(Tensor::randn(Shape{n}, rng));
    const auto bytes = pack_signs(t);
    EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), packed_size_bytes(n));
    const Tensor back = unpack_signs(bytes, Shape{n});
    EXPECT_TRUE(back.allclose(t, 0.0f)) << "n=" << n;
  }
}

TEST(Bitpack, UnpackValidatesSize) {
  std::vector<std::uint8_t> bytes(2, 0);
  EXPECT_THROW(unpack_signs(bytes, Shape{17}), Error);
  EXPECT_NO_THROW(unpack_signs(bytes, Shape{16}));
}

TEST(Bitpack, TrailingBitsAreZero) {
  const Tensor t = Tensor::ones(Shape{3});
  const auto bytes = pack_signs(t);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b00000111);
}

}  // namespace
}  // namespace ddnn
