// Tests for the windowed time-series layer, the run ledger and the HTML
// report renderer (src/obs/timeseries, src/obs/ledger, src/obs/report).
//
// This suite runs under the determinism_series_sweep CTest: every asserted
// value — including whole CSV/JSON/HTML byte strings — must be independent
// of DDNN_THREADS. The series is recorded by serial loops keyed on
// deterministic clocks, so exports are byte-identical across thread counts
// and reruns by construction; these tests pin that contract down.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "dist/runtime.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "util/error.hpp"

namespace ddnn::obs {
namespace {

// ------------------------------------------------------------ WindowedSeries

TEST(WindowedSeries, CounterEmitsPerWindowDeltas) {
  WindowedSeries s(1.0);
  const int c = s.add_counter("events");
  s.record(c, 0.1, 2.0);
  s.record(c, 0.9, 3.0);
  s.record(c, 2.5, 7.0);  // window 1 is empty, window 2 gets 7
  EXPECT_EQ(s.window_count(), 3u);
  const std::string csv = s.to_csv();
  EXPECT_EQ(csv,
            "window,t_start,t_end,events\n"
            "0,0,1,5\n"
            "1,1,2,0\n"
            "2,2,3,7\n");
}

TEST(WindowedSeries, GaugeKeepsLastValueAndCarriesAcrossEmptyWindows) {
  WindowedSeries s(1.0);
  const int g = s.add_gauge("level");
  s.record(g, 0.2, 10.0);
  s.record(g, 0.8, 20.0);  // last in window 0 wins
  s.record(g, 3.0, 5.0);   // windows 1 and 2 carry 20
  const std::string csv = s.to_csv();
  EXPECT_EQ(csv,
            "window,t_start,t_end,level\n"
            "0,0,1,20\n"
            "1,1,2,20\n"
            "2,2,3,20\n"
            "3,3,4,5\n");
}

TEST(WindowedSeries, HistogramExportsNearestRankPercentiles) {
  WindowedSeries s(1.0);
  const int h = s.add_histogram("lat");
  for (int i = 1; i <= 100; ++i) {
    s.record(h, 0.5, static_cast<double>(i));
  }
  s.record(h, 1.5, 42.0);
  const auto header = s.header();
  ASSERT_EQ(header.size(), 7u);
  EXPECT_EQ(header[3], "lat.n");
  EXPECT_EQ(header[4], "lat.p50");
  EXPECT_EQ(header[5], "lat.p95");
  EXPECT_EQ(header[6], "lat.max");
  // Nearest-rank over 1..100: p50 = 50, p95 = 95 (matches util/stats).
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,lat.n,lat.p50,lat.p95,lat.max\n"
            "0,0,1,100,50,95,100\n"
            "1,1,2,1,42,42,42\n");
}

TEST(WindowedSeries, RatioDividesWindowDeltasAndZeroesOnEmptyDenominator) {
  WindowedSeries s(1.0);
  const int num = s.add_counter("hits");
  const int den = s.add_counter("total");
  s.add_ratio("hit_rate", num, den);
  s.record(num, 0.1, 1.0);
  s.record(den, 0.1, 4.0);
  s.record(num, 2.2, 3.0);  // window 1: both zero -> ratio 0, not NaN
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,hits,total,hit_rate\n"
            "0,0,1,1,4,0.25\n"
            "1,1,2,0,0,0\n"
            "2,2,3,3,0,0\n");
}

TEST(WindowedSeries, RateDividesWindowDeltasByWindowWidth) {
  WindowedSeries s(2.0);
  const int done = s.add_counter("done");
  s.add_rate("throughput", done);
  s.record(done, 0.1, 1.0);
  s.record(done, 1.9, 3.0);  // window 0: 4 events over 2 s -> 2/s
  s.record(done, 4.5, 1.0);  // window 1 empty -> 0/s; window 2: 0.5/s
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,done,throughput\n"
            "0,0,2,4,2\n"
            "1,2,4,0,0\n"
            "2,4,6,1,0.5\n");
}

TEST(WindowedSeries, RateAtExactWindowBoundaryCreditsTheNewWindow) {
  // t = k * width sits in window k, not k-1 (floor semantics): an event
  // recorded exactly on the boundary must not inflate the closed window.
  WindowedSeries s(2.0);
  const int done = s.add_counter("done");
  s.add_rate("throughput", done);
  s.record(done, 0.0, 2.0);  // leading edge of window 0
  s.record(done, 2.0, 6.0);  // exact boundary: belongs to window 1
  s.record(done, 4.0, 1.0);  // exact boundary: belongs to window 2
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,done,throughput\n"
            "0,0,2,2,1\n"
            "1,2,4,6,3\n"
            "2,4,6,1,0.5\n");
}

TEST(WindowedSeries, RateSpanningEmptyLeadingWindowsIsZeroThere) {
  // The first record can land windows deep: every skipped window must
  // flush as an explicit zero rate, not be silently absent.
  WindowedSeries s(1.0);
  const int done = s.add_counter("done");
  s.add_rate("throughput", done);
  s.record(done, 3.5, 4.0);
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,done,throughput\n"
            "0,0,1,0,0\n"
            "1,1,2,0,0\n"
            "2,2,3,0,0\n"
            "3,3,4,4,4\n");
}

TEST(WindowedSeries, CounterResetMidSeriesIsRejectedNotWrapped) {
  // A counter that goes backwards (process restart, wrapped delta) must
  // fail loudly: silently recording a negative delta would corrupt every
  // derived rate/ratio column downstream.
  WindowedSeries s(1.0);
  const int done = s.add_counter("done");
  s.add_rate("throughput", done);
  s.record(done, 0.5, 10.0);
  EXPECT_THROW(s.record(done, 0.6, -10.0), ddnn::Error);
  try {
    s.record(done, 0.7, -3.0);
    FAIL() << "expected ddnn::Error";
  } catch (const ddnn::Error& e) {
    EXPECT_NE(std::string(e.what()).find("done"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
  // The rejected records left no trace in the export.
  EXPECT_EQ(s.to_csv(),
            "window,t_start,t_end,done,throughput\n"
            "0,0,1,10,10\n");
}

TEST(WindowedSeries, HdrColumnExportsTailColumnsPerWindow) {
  WindowedSeries s(1.0);
  const int lat = s.add_hdr("lat_ms", 1e-3, 3.6e6);
  // Window 0: 100 samples at 2 ms, one 50 ms straggler (with an exemplar).
  for (int i = 0; i < 100; ++i) s.record(lat, 0.5, 2.0);
  s.record(lat, 0.9, 50.0, /*trace_id=*/777, /*sample_index=*/100);
  // Window 1: empty. Window 2: one sample.
  s.record(lat, 2.5, 4.0);
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("lat_ms.n,lat_ms.p99,lat_ms.p999,lat_ms.max"),
            std::string::npos);
  // Three data rows: the window-1 row flushed as all zeros (histogram was
  // reset at the flush), and window 2 only holds its own sample.
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  std::getline(lines, line);
  EXPECT_EQ(line.substr(0, 8), "0,0,1,10");  // n=101 in window 0
  std::getline(lines, line);
  EXPECT_EQ(line, "1,1,2,0,0,0,0");
  std::getline(lines, line);
  EXPECT_EQ(line.substr(0, 7), "2,2,3,1");
  // Exports are deterministic: a second render is byte-identical.
  EXPECT_EQ(csv, s.to_csv());
}

TEST(WindowedSeries, RejectsApiMisuse) {
  WindowedSeries s(1.0);
  const int c = s.add_counter("a");
  EXPECT_THROW(s.add_counter("a"), ddnn::Error);        // duplicate name
  const int g = s.add_gauge("g");
  EXPECT_THROW(s.add_ratio("r", c, g), ddnn::Error);    // den not a counter
  EXPECT_THROW(s.add_rate("hz", g), ddnn::Error);       // rate needs a counter
  EXPECT_THROW(s.add_rate("hz", 99), ddnn::Error);      // unknown column id
  const int r = s.add_ratio("ok", c, c);
  const int hz = s.add_rate("hz", c);                   // before sealing
  EXPECT_THROW(s.record(r, 0.0, 1.0), ddnn::Error);     // ratios are derived
  EXPECT_THROW(s.record(hz, 0.0, 1.0), ddnn::Error);    // rates are derived
  s.record(c, 5.0, 1.0);
  EXPECT_THROW(s.add_counter("late"), ddnn::Error);     // sealed after record
  EXPECT_THROW(s.record(c, 3.0, 1.0), ddnn::Error);     // clock went backward
  EXPECT_THROW(s.record(c, -1.0, 1.0), ddnn::Error);    // negative clock
}

TEST(WindowedSeries, JsonExportMatchesCsvContent) {
  WindowedSeries s(0.5, "t");
  const int c = s.add_counter("bytes");
  s.record(c, 0.1, 64.0);
  s.record(c, 0.6, 32.0);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"axis\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"width\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\""), std::string::npos);
  // Reruns of the same recording are byte-identical.
  WindowedSeries s2(0.5, "t");
  const int c2 = s2.add_counter("bytes");
  s2.record(c2, 0.1, 64.0);
  s2.record(c2, 0.6, 32.0);
  EXPECT_EQ(s.to_csv(), s2.to_csv());
  EXPECT_EQ(json, s2.to_json());
}

// --------------------------------------------- runtime + trainer integration

struct SeriesRuntimeFixture : public ::testing::Test {
  SeriesRuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
    model = std::make_unique<core::DdnnModel>(
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
    model->set_training(false);
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::unique_ptr<core::DdnnModel> model;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(SeriesRuntimeFixture, RuntimeSeriesIsRerunIdenticalAndSumsToMetrics) {
  // The tentpole contract: same model + data + plan => byte-identical
  // series export, and every counter column partitions the final total.
  dist::FaultPlan plan;
  plan.seed = 13;
  plan.link_drop_prob = 0.1;
  auto run = [&] {
    dist::HierarchyRuntime runtime(*model, {0.5}, devices);
    runtime.set_fault_plan(plan);
    WindowedSeries series(0.05);
    runtime.bind_series(&series);
    for (const auto& s : dataset->test()) runtime.classify(s);
    return std::pair{series.to_csv(), runtime.metrics()};
  };
  const auto [csv1, m1] = run();
  const auto [csv2, m2] = run();
  EXPECT_EQ(csv1, csv2);
  EXPECT_GT(csv1.size(), 0u);

  // Column sums reconcile exactly with RuntimeMetrics (integer counters:
  // the cells print as integers, so parsing with stoll is exact).
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  {
    std::istringstream in(csv1);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      std::vector<std::string> cells;
      std::istringstream ls(line);
      std::string cell;
      while (std::getline(ls, cell, ',')) cells.push_back(cell);
      if (first) {
        header = cells;
        first = false;
      } else {
        rows.push_back(cells);
      }
    }
  }
  auto column_sum = [&](const std::string& name) {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] != name) continue;
      for (const auto& row : rows) total += std::stoll(row[i]);
      return total;
    }
    ADD_FAILURE() << "missing series column " << name;
    return total;
  };
  EXPECT_EQ(column_sum("runtime.samples"), m1.samples);
  EXPECT_EQ(column_sum("runtime.bytes_total"), m1.total_bytes);
  EXPECT_EQ(column_sum("runtime.correct"), m1.correct);
  EXPECT_EQ(column_sum("runtime.retries"), m1.reliability.retries);
  EXPECT_EQ(column_sum("runtime.drops"), m1.reliability.drops);
  EXPECT_EQ(column_sum("runtime.timeouts"), m1.reliability.timeouts);
  EXPECT_EQ(column_sum("runtime.dead"), m1.reliability.dead_samples);
  EXPECT_EQ(column_sum("runtime.exit.local"), m1.exit_counts[0]);
  EXPECT_EQ(column_sum("runtime.exit.cloud"), m1.exit_counts[1]);
}

TEST_F(SeriesRuntimeFixture, TrainerSeriesRecordsOneWindowPerEpoch) {
  core::DdnnModel fresh(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  WindowedSeries series(1.0, "epoch");
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.series = &series;
  cfg.series_eval = &dataset->test();
  core::train_ddnn(fresh, dataset->train(), devices, cfg);
  EXPECT_EQ(series.window_count(), 2u);
  const auto header = series.header();
  EXPECT_EQ(header[1], "epoch_start");
  bool has_loss = false, has_overall = false;
  for (const auto& h : header) {
    if (h == "train.loss") has_loss = true;
    if (h == "train.overall_acc") has_overall = true;
  }
  EXPECT_TRUE(has_loss);
  EXPECT_TRUE(has_overall);
  // The eval pass must leave the model back in training mode between
  // epochs — trajectory identical to a run without a bound series.
  core::DdnnModel control(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig plain;
  plain.epochs = 2;
  const auto stats_plain = core::train_ddnn(control, dataset->train(),
                                            devices, plain);
  core::DdnnModel observed(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  WindowedSeries series2(1.0, "epoch");
  core::TrainConfig with_series = plain;
  with_series.series = &series2;
  with_series.series_eval = &dataset->test();
  const auto stats_obs = core::train_ddnn(observed, dataset->train(),
                                          devices, with_series);
  EXPECT_EQ(stats_plain.final_loss(), stats_obs.final_loss());
}

// ------------------------------------------------------------------- ledger

TEST(Ledger, JsonLineRoundTripsThroughParser) {
  LedgerRecord rec;
  rec.command = "simulate";
  rec.add_info("preset", "c");
  rec.add_info("note", "quotes \" slash \\ tab \t newline \n done");
  rec.add_metric("runtime.samples", 171);
  rec.add_metric("runtime.accuracy", 0.8070175438596491);
  const std::string line = to_json_line(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "a ledger line must be newline-free for whole-line atomicity";

  const auto tmp = std::filesystem::path("ledger_roundtrip_tmp.jsonl");
  std::filesystem::remove(tmp);
  ASSERT_FALSE(append_record(rec, tmp.string()).empty());
  ASSERT_FALSE(append_record(rec, tmp.string()).empty());
  const auto records = read_ledger(tmp.string());
  std::filesystem::remove(tmp);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].command, "simulate");
  EXPECT_EQ(records[0].info, rec.info);
  EXPECT_EQ(records[0].metrics, rec.metrics);
  EXPECT_EQ(to_json_line(records[1]), line);
}

TEST(Ledger, ReadMissingFileIsEmptyAndMalformedLineThrows) {
  EXPECT_TRUE(read_ledger("does_not_exist_tmp.jsonl").empty());
  const auto tmp = std::filesystem::path("ledger_malformed_tmp.jsonl");
  {
    std::ofstream out(tmp);
    out << "{\"command\": \"x\", \"info\": {}, \"metrics\": {}}\n";
    out << "not json\n";
  }
  EXPECT_THROW(read_ledger(tmp.string()), ddnn::Error);
  std::filesystem::remove(tmp);
}

TEST(Ledger, ConcurrentAppendersNeverTearLines) {
  // Each append is a single O_APPEND write(2) of one whole line, so
  // concurrent writers interleave records, never bytes.
  const auto tmp = std::filesystem::path("ledger_concurrent_tmp.jsonl");
  std::filesystem::remove(tmp);
  constexpr int kWriters = 4;
  constexpr int kEach = 50;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kEach; ++i) {
        LedgerRecord rec;
        rec.command = "writer" + std::to_string(w);
        rec.add_metric("i", i);
        append_record(rec, tmp.string());
      }
    });
  }
  for (auto& t : writers) t.join();
  const auto records = read_ledger(tmp.string());  // throws on a torn line
  std::filesystem::remove(tmp);
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kWriters * kEach));
  std::vector<int> per_writer(kWriters, 0);
  for (const auto& rec : records) {
    ASSERT_EQ(rec.command.rfind("writer", 0), 0u);
    ++per_writer[rec.command[6] - '0'];
  }
  for (const int n : per_writer) EXPECT_EQ(n, kEach);
}

// ------------------------------------------------------------------- report

TEST(Report, RendersLedgerSeriesAndCsvsDeterministically) {
  namespace fs = std::filesystem;
  const fs::path dir = "report_test_tmp";
  fs::remove_all(dir);
  fs::create_directories(dir);

  WindowedSeries series(1.0);
  const int c = series.add_counter("runtime.samples");
  const int g = series.add_gauge("runtime.level");
  for (int w = 0; w < 8; ++w) {
    series.record(c, w + 0.5, static_cast<double>(w + 1));
    series.record(g, w + 0.5, 10.0 * w);
  }
  series.write_csv((dir / "sim_series.csv").string());

  LedgerRecord rec;
  rec.command = "simulate";
  rec.add_info("preset", "c");
  rec.add_info("series", (dir / "sim_series.csv").string());
  rec.add_metric("runtime.samples", 36);
  append_record(rec, (dir / "ledger.jsonl").string());
  rec.metrics[0].second = 40;  // second run: sparkline trajectory
  append_record(rec, (dir / "ledger.jsonl").string());

  {
    std::ofstream csv(dir / "fig7_threshold_sweep.csv");
    csv << "T,Overall Acc. (%),Local Exit (%)\n0.5,80,20\n0.9,85,60\n";
  }

  ReportOptions opts;
  opts.results_dir = dir.string();
  const std::string html = render_report_html(opts);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Run ledger"), std::string::npos);
  EXPECT_NE(html.find("fig7_threshold_sweep"), std::string::npos);
  EXPECT_NE(html.find("runtime.samples"), std::string::npos);
  // HTML-escaped, no raw angle brackets from data.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(html, render_report_html(opts));

  const std::string out = (dir / "report.html").string();
  write_report_html(opts, out);
  std::ifstream in(out);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), html);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ddnn::obs
