// Thread-pool semantics and the determinism contract: a fixed DDNN_THREADS
// is bit-deterministic, DDNN_THREADS=1 reproduces the serial kernels
// exactly, and our kernels (disjoint-write chunking) are bit-identical
// across thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "data/mvmc.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ddnn {
namespace {

using autograd::Variable;

/// Pins the pool size for a scope, then restores the env/hardware default.
struct PoolSizeGuard {
  explicit PoolSizeGuard(int n) { ThreadPool::set_size(n); }
  ~PoolSizeGuard() { ThreadPool::set_size(0); }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) *
                               sizeof(float)));
}

/// Runs `fn` under `threads` compute threads and returns its result.
template <typename Fn>
auto with_threads(int threads, Fn fn) {
  PoolSizeGuard guard(threads);
  return fn();
}

// ------------------------------------------------------------ pool basics

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  PoolSizeGuard guard(4);
  std::vector<int> hits(10000, 0);
  parallel_for(0, 10000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  PoolSizeGuard guard(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SmallRangeRunsInlineAsOneChunk) {
  PoolSizeGuard guard(4);
  std::int64_t lo_seen = -1, hi_seen = -1;
  int calls = 0;
  parallel_for(3, 7, 8, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    lo_seen = lo;
    hi_seen = hi;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lo_seen, 3);
  EXPECT_EQ(hi_seen, 7);
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  PoolSizeGuard guard(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [](std::int64_t, std::int64_t) { throw Error("boom"); }),
      Error);
  // The pool survives an exception and keeps scheduling work.
  std::vector<int> hits(100, 0);
  parallel_for(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  PoolSizeGuard guard(4);
  std::vector<int> hits(64 * 64, 0);
  parallel_for(0, 64, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      parallel_for(0, 64, 1, [&](std::int64_t lo2, std::int64_t hi2) {
        for (std::int64_t j = lo2; j < hi2; ++j) {
          ++hits[static_cast<std::size_t>(i * 64 + j)];
        }
      });
    }
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, SizeOneAlwaysInline) {
  PoolSizeGuard guard(1);
  EXPECT_EQ(ThreadPool::instance().size(), 1);
  std::vector<std::int64_t> order;
  parallel_for(0, 1000, 10, [&](std::int64_t lo, std::int64_t) {
    order.push_back(lo);  // no synchronization: must be single-threaded
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]);  // chunks in order, on one thread
  }
}

// --------------------------------------------- kernel determinism 1 vs 4

TEST(Determinism, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{70, 40}, rng);
  const Tensor b = Tensor::randn(Shape{40, 50}, rng);
  const Tensor serial = with_threads(1, [&] { return ops::matmul(a, b); });
  const Tensor threaded = with_threads(4, [&] { return ops::matmul(a, b); });
  expect_bitwise_equal(serial, threaded);
}

TEST(Determinism, MatmulTnAndNtBitIdenticalAcrossThreadCounts) {
  Rng rng(12);
  const Tensor at = Tensor::randn(Shape{40, 70}, rng);
  const Tensor b = Tensor::randn(Shape{40, 50}, rng);
  expect_bitwise_equal(with_threads(1, [&] { return ops::matmul_tn(at, b); }),
                       with_threads(4, [&] { return ops::matmul_tn(at, b); }));
  const Tensor a = Tensor::randn(Shape{70, 40}, rng);
  const Tensor bt = Tensor::randn(Shape{50, 40}, rng);
  expect_bitwise_equal(with_threads(1, [&] { return ops::matmul_nt(a, bt); }),
                       with_threads(4, [&] { return ops::matmul_nt(a, bt); }));
}

TEST(Determinism, ElementwiseAndSoftmaxBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  const Tensor x = Tensor::randn(Shape{100000}, rng);  // above the cutoff
  expect_bitwise_equal(with_threads(1, [&] { return ops::exp(x); }),
                       with_threads(4, [&] { return ops::exp(x); }));
  const Tensor y = Tensor::randn(Shape{100000}, rng);
  expect_bitwise_equal(with_threads(1, [&] { return ops::add(x, y); }),
                       with_threads(4, [&] { return ops::add(x, y); }));
  const Tensor logits = Tensor::randn(Shape{5000, 3}, rng);
  expect_bitwise_equal(
      with_threads(1, [&] { return ops::softmax_rows(logits); }),
      with_threads(4, [&] { return ops::softmax_rows(logits); }));
}

TEST(Determinism, Im2colAndConvForwardBitIdenticalAcrossThreadCounts) {
  Rng rng(14);
  const Tensor x = Tensor::randn(Shape{8, 3, 16, 16}, rng);
  const Conv2dGeometry g{.in_channels = 3, .in_h = 16, .in_w = 16};
  expect_bitwise_equal(with_threads(1, [&] { return im2col(x, g); }),
                       with_threads(4, [&] { return im2col(x, g); }));

  autograd::NoGradGuard no_grad;
  const Variable vx(x);
  const Variable w(Tensor::randn(Shape{4, 3, 3, 3}, rng));
  const Tensor conv_serial = with_threads(1, [&] {
    return autograd::conv2d(vx, w, Variable(), 1, 1).value();
  });
  const Tensor conv_threaded = with_threads(4, [&] {
    return autograd::conv2d(vx, w, Variable(), 1, 1).value();
  });
  expect_bitwise_equal(conv_serial, conv_threaded);
}

TEST(Determinism, Col2imBitIdenticalAcrossThreadCounts) {
  Rng rng(15);
  const Conv2dGeometry g{.in_channels = 3, .in_h = 16, .in_w = 16};
  const Tensor cols = Tensor::randn(
      Shape{8 * g.out_h() * g.out_w(), g.patch_size()}, rng);
  expect_bitwise_equal(with_threads(1, [&] { return col2im(cols, g, 8); }),
                       with_threads(4, [&] { return col2im(cols, g, 8); }));
}

// --------------------------------------- end-to-end evaluation determinism

TEST(Determinism, EvaluateExitsAndPolicyIdenticalAcrossThreadCounts) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 8;
  data_cfg.test_samples = 40;
  data_cfg.seed = 99;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto serial = with_threads(1, [&] {
    return core::evaluate_exits(model, dataset.test(), devices, 8);
  });
  const auto threaded = with_threads(4, [&] {
    return core::evaluate_exits(model, dataset.test(), devices, 8);
  });
  ASSERT_EQ(serial.num_exits(), threaded.num_exits());
  EXPECT_EQ(serial.labels, threaded.labels);
  for (std::size_t e = 0; e < serial.num_exits(); ++e) {
    expect_bitwise_equal(serial.exit_probs[e], threaded.exit_probs[e]);
  }

  const auto policy_serial =
      with_threads(1, [&] { return core::apply_policy(serial, {0.5}); });
  const auto policy_threaded =
      with_threads(4, [&] { return core::apply_policy(serial, {0.5}); });
  EXPECT_DOUBLE_EQ(policy_serial.overall_accuracy,
                   policy_threaded.overall_accuracy);
  EXPECT_EQ(policy_serial.exit_fraction, policy_threaded.exit_fraction);
  ASSERT_EQ(policy_serial.decisions.size(), policy_threaded.decisions.size());
  for (std::size_t i = 0; i < policy_serial.decisions.size(); ++i) {
    EXPECT_EQ(policy_serial.decisions[i].exit_taken,
              policy_threaded.decisions[i].exit_taken);
    EXPECT_EQ(policy_serial.decisions[i].prediction,
              policy_threaded.decisions[i].prediction);
    EXPECT_DOUBLE_EQ(policy_serial.decisions[i].entropy,
                     policy_threaded.decisions[i].entropy);
  }

  const auto search_serial = with_threads(
      1, [&] { return core::search_thresholds_best_overall(serial, 0.25); });
  const auto search_threaded = with_threads(
      4, [&] { return core::search_thresholds_best_overall(serial, 0.25); });
  EXPECT_EQ(search_serial, search_threaded);
}

}  // namespace
}  // namespace ddnn
