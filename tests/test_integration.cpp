// End-to-end integration tests: joint training on the synthetic dataset,
// exit evaluation, threshold policies, serialization, caching, and the
// distributed runtime on a *trained* model. Kept small (reduced dataset and
// epoch counts) so the whole suite stays fast.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "dist/runtime.hpp"
#include "nn/serialize.hpp"

namespace ddnn {
namespace {

struct TrainedFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 260;
    data_cfg.test_samples = 80;
    data_cfg.seed = 2024;
    dataset = new data::MvmcDataset(data::MvmcDataset::generate(data_cfg));

    model = new core::DdnnModel(
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
    core::TrainConfig cfg;
    cfg.epochs = 16;
    history = new core::TrainHistory(
        core::train_ddnn(*model, dataset->train(), devices, cfg));
  }

  static void TearDownTestSuite() {
    delete history;
    delete model;
    delete dataset;
  }

  static inline data::MvmcDataset* dataset = nullptr;
  static inline core::DdnnModel* model = nullptr;
  static inline core::TrainHistory* history = nullptr;
  static inline const std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(TrainedFixture, JointLossDecreases) {
  ASSERT_GE(history->epoch_loss.size(), 2u);
  EXPECT_LT(history->epoch_loss.back(), history->epoch_loss.front());
}

TEST_F(TrainedFixture, BothExitsBeatChanceByAWideMargin) {
  const auto eval = core::evaluate_exits(*model, dataset->test(), devices);
  // 3 classes -> chance is ~0.33; even this abbreviated training should be
  // clearly above it at both exits (full training reaches ~95%, see the
  // bench harness).
  EXPECT_GT(core::exit_accuracy(eval, 0), 0.55);
  EXPECT_GT(core::exit_accuracy(eval, 1), 0.55);
}

TEST_F(TrainedFixture, OverallInterpolatesBetweenExits) {
  const auto eval = core::evaluate_exits(*model, dataset->test(), devices);
  const auto r = core::apply_policy(eval, {0.8});
  const double lo =
      std::min(core::exit_accuracy(eval, 0), core::exit_accuracy(eval, 1));
  EXPECT_GE(r.overall_accuracy, lo - 0.1);
}

TEST_F(TrainedFixture, LocalExitFractionIsMonotoneInThreshold) {
  const auto eval = core::evaluate_exits(*model, dataset->test(), devices);
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    const auto r = core::apply_policy(eval, {t});
    EXPECT_GE(r.local_exit_fraction(), prev);
    prev = r.local_exit_fraction();
  }
  EXPECT_DOUBLE_EQ(core::apply_policy(eval, {1.0}).local_exit_fraction(), 1.0);
}

TEST_F(TrainedFixture, SaveLoadPreservesEvaluation) {
  const std::string path = ::testing::TempDir() + "/ddnn_trained.bin";
  nn::save_state(*model, path);

  core::DdnnModel restored(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  nn::load_state(restored, path);

  const auto a = core::evaluate_exits(*model, dataset->test(), devices);
  const auto b = core::evaluate_exits(restored, dataset->test(), devices);
  for (std::size_t e = 0; e < a.exit_probs.size(); ++e) {
    EXPECT_TRUE(a.exit_probs[e].allclose(b.exit_probs[e], 0.0f));
  }
  std::filesystem::remove(path);
}

TEST_F(TrainedFixture, DistributedRuntimeMatchesOnTrainedModel) {
  const auto eval = core::evaluate_exits(*model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, {0.8});
  dist::HierarchyRuntime runtime(*model, {0.8}, devices);
  const auto metrics = runtime.run(dataset->test());
  EXPECT_DOUBLE_EQ(metrics.accuracy(), central.overall_accuracy);
  EXPECT_EQ(metrics.exit_counts[0],
            std::lround(central.exit_fraction[0] *
                        static_cast<double>(metrics.samples)));
}

TEST_F(TrainedFixture, SingleDeviceFailureDegradesGracefully) {
  const auto eval = core::evaluate_exits(*model, dataset->test(), devices);
  const double healthy = core::apply_policy(eval, {0.8}).overall_accuracy;
  std::vector<bool> active(6, true);
  active[1] = false;
  const auto degraded_eval =
      core::evaluate_exits(*model, dataset->test(), devices, active);
  const double degraded =
      core::apply_policy(degraded_eval, {0.8}).overall_accuracy;
  // The paper's fault-tolerance claim: losing one device must not collapse
  // the system to chance (full training loses only a few points; this
  // abbreviated fixture gets more slack).
  EXPECT_GT(degraded, 0.45);
  EXPECT_GT(degraded, healthy - 0.3);
}

TEST_F(TrainedFixture, EvaluationIsBatchSizeIndependent) {
  // Eval mode normalizes with running statistics, so per-sample outputs
  // must not depend on how samples are batched.
  const auto a = core::evaluate_exits(*model, dataset->test(), devices, 64);
  const auto b = core::evaluate_exits(*model, dataset->test(), devices, 7);
  const auto c = core::evaluate_exits(*model, dataset->test(), devices, 1);
  for (std::size_t e = 0; e < a.exit_probs.size(); ++e) {
    EXPECT_TRUE(a.exit_probs[e].allclose(b.exit_probs[e], 1e-5f));
    EXPECT_TRUE(a.exit_probs[e].allclose(c.exit_probs[e], 1e-5f));
  }
}

TEST_F(TrainedFixture, IndividualModelTrainsAboveChanceOnPresentFrames) {
  core::IndividualModel individual(3, 32, 4, 3, 5);
  core::TrainConfig cfg;
  cfg.epochs = 8;
  const auto hist =
      core::train_individual(individual, dataset->train(), 5, cfg);
  EXPECT_LT(hist.epoch_loss.back(), hist.epoch_loss.front());
  // Evaluate only on frames the device can actually see.
  const auto idx = data::present_indices(dataset->test(), 5);
  ASSERT_FALSE(idx.empty());
  std::vector<data::MvmcSample> visible;
  for (const auto i : idx) visible.push_back(dataset->test()[i]);
  EXPECT_GT(core::individual_accuracy(individual, visible, 5), 0.5);
}

TEST(Cache, TrainOrLoadRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/ddnn_cache_test";
  std::filesystem::remove_all(dir);
  setenv("DDNN_CACHE_DIR", dir.c_str(), 1);

  Rng rng(3);
  nn::Linear a(4, 2, rng);
  int train_calls = 0;
  const bool loaded_first = core::train_or_load(a, "unit-key", [&] {
    ++train_calls;
    a.parameters()[0].var.value().fill(7.0f);
  });
  EXPECT_FALSE(loaded_first);
  EXPECT_EQ(train_calls, 1);

  Rng rng2(9);
  nn::Linear b(4, 2, rng2);
  const bool loaded_second =
      core::train_or_load(b, "unit-key", [&] { ++train_calls; });
  EXPECT_TRUE(loaded_second);
  EXPECT_EQ(train_calls, 1);
  EXPECT_FLOAT_EQ(b.parameters()[0].var.value()[0], 7.0f);

  setenv("DDNN_CACHE_DIR", "off", 1);
  nn::Linear c(4, 2, rng2);
  EXPECT_FALSE(core::train_or_load(c, "unit-key", [&] { ++train_calls; }));
  EXPECT_EQ(train_calls, 2);

  unsetenv("DDNN_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Cache, SanitizedKeysKeepDistinctFiles) {
  // Regression: "mp/3dev" and "mp:3dev" both sanitize to "mp_3dev"; without
  // the raw-key hash suffix they shared a .ddnn file and loaded each
  // other's weights.
  const std::string dir = ::testing::TempDir() + "/ddnn_cache_collision";
  std::filesystem::remove_all(dir);
  setenv("DDNN_CACHE_DIR", dir.c_str(), 1);

  EXPECT_NE(core::cache_path("mp/3dev"), core::cache_path("mp:3dev"));

  Rng rng(3);
  nn::Linear a(4, 2, rng);
  core::train_or_load(a, "mp/3dev", [&] {
    a.parameters()[0].var.value().fill(1.0f);
  });
  Rng rng2(5);
  nn::Linear b(4, 2, rng2);
  int trained = 0;
  core::train_or_load(b, "mp:3dev", [&] {
    ++trained;
    b.parameters()[0].var.value().fill(2.0f);
  });
  EXPECT_EQ(trained, 1);  // a cache hit here would mean a key collision
  EXPECT_FLOAT_EQ(b.parameters()[0].var.value()[0], 2.0f);

  unsetenv("DDNN_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Cache, PathRequiresCachingEnabled) {
  setenv("DDNN_CACHE_DIR", "off", 1);
  EXPECT_THROW(core::cache_path("any-key"), Error);
  unsetenv("DDNN_CACHE_DIR");
}

TEST(Training, AllSkippedBatchesRecordZeroLossNotNaN) {
  // Regression: with batch_size 1 every batch trips the batch-norm size
  // guard, so no batch contributes loss; epoch_loss recorded 0/0 = NaN.
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 4;
  data_cfg.test_samples = 4;
  const auto ds = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 1;
  const auto history =
      core::train_ddnn(model, ds.train(), {0, 1, 2, 3, 4, 5}, cfg);
  ASSERT_EQ(history.epoch_loss.size(), 2u);
  for (const float l : history.epoch_loss) {
    EXPECT_FALSE(std::isnan(l));
    EXPECT_EQ(l, 0.0f);
  }

  core::IndividualModel individual(3, 32, 4, 3, 5);
  const auto ihistory = core::train_individual(individual, ds.train(), 5, cfg);
  for (const float l : ihistory.epoch_loss) EXPECT_FALSE(std::isnan(l));
}

TEST(Training, ExitWeightsAreValidated) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 8;
  data_cfg.test_samples = 4;
  const auto ds = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.exit_weights = {1.0f, 2.0f, 3.0f};  // model has 2 exits
  EXPECT_THROW(
      core::train_ddnn(model, ds.train(), {0, 1, 2, 3, 4, 5}, cfg),
      Error);
}

TEST(Training, EpochCallbackFiresOncePerEpoch) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 24;
  data_cfg.test_samples = 4;
  const auto ds = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig cfg;
  cfg.epochs = 3;
  std::vector<int> epochs_seen;
  cfg.epoch_callback = [&](int epoch, float loss) {
    epochs_seen.push_back(epoch);
    EXPECT_GT(loss, 0.0f);
  };
  core::train_ddnn(model, ds.train(), {0, 1, 2, 3, 4, 5}, cfg);
  EXPECT_EQ(epochs_seen, (std::vector<int>{0, 1, 2}));
}

TEST(Training, IsDeterministicForFixedSeeds) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 32;
  data_cfg.test_samples = 8;
  data_cfg.seed = 13;
  const auto ds = data::MvmcDataset::generate(data_cfg);
  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  core::TrainConfig train_cfg;
  train_cfg.epochs = 2;

  core::DdnnModel a(cfg), b(cfg);
  core::train_ddnn(a, ds.train(), {0, 1, 2, 3, 4, 5}, train_cfg);
  core::train_ddnn(b, ds.train(), {0, 1, 2, 3, 4, 5}, train_cfg);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].var.value().allclose(pb[i].var.value(), 0.0f))
        << pa[i].name;
  }
}

TEST(Training, EdgeConfigTrainsWithThreeExitLosses) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 48;
  data_cfg.test_samples = 12;
  data_cfg.seed = 5;
  const auto ds = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  core::TrainConfig cfg;
  cfg.epochs = 3;
  const auto hist =
      core::train_ddnn(model, ds.train(), {0, 1, 2, 3, 4, 5}, cfg);
  EXPECT_LT(hist.epoch_loss.back(), hist.epoch_loss.front());
  const auto eval =
      core::evaluate_exits(model, ds.test(), {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(eval.num_exits(), 3u);
}

}  // namespace
}  // namespace ddnn
