// Configuration-grid property tests: every buildable DdnnConfig must
// produce a model whose forward pass satisfies the structural invariants
// (exit count/shapes, binary features where required, masked-failure
// robustness, section-API consistency), across presets, aggregation
// schemes, filter counts and precision modes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include <filesystem>

#include "autograd/grad_mode.hpp"
#include "core/model.hpp"
#include "nn/serialize.hpp"

namespace ddnn::core {
namespace {

using autograd::Variable;

std::vector<Variable> grid_views(int n, std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Variable> views;
  for (int i = 0; i < n; ++i) {
    views.emplace_back(
        Tensor::rand_uniform(Shape{2, 3, 32, 32}, rng, 0.0f, 1.0f));
  }
  return views;
}

// ------------------------------------------------------------ preset grid

class PresetGrid : public ::testing::TestWithParam<HierarchyPreset> {};

TEST_P(PresetGrid, ForwardSatisfiesStructuralInvariants) {
  const auto cfg = DdnnConfig::preset(GetParam());
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(grid_views(cfg.num_devices));

  ASSERT_EQ(static_cast<int>(out.exit_logits.size()), cfg.num_exits());
  for (const auto& logits : out.exit_logits) {
    ASSERT_TRUE(logits.defined());
    EXPECT_EQ(logits.shape(), Shape({2, cfg.num_classes}));
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(logits.value()[i]));
    }
  }
  EXPECT_EQ(out.device_features.size(),
            static_cast<std::size_t>(cfg.num_devices));
  EXPECT_EQ(out.edge_features.size(), cfg.edge_groups.size());
  EXPECT_EQ(model.exit_names().size(),
            static_cast<std::size_t>(cfg.num_exits()));
}

TEST_P(PresetGrid, SingleFailureIsSurvivableWhenMultiDevice) {
  const auto cfg = DdnnConfig::preset(GetParam());
  if (cfg.num_devices < 2) GTEST_SKIP() << "single-device preset";
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto views = grid_views(cfg.num_devices);
  for (int failed = 0; failed < cfg.num_devices; ++failed) {
    std::vector<bool> active(static_cast<std::size_t>(cfg.num_devices), true);
    active[static_cast<std::size_t>(failed)] = false;
    const auto out = model.forward(views, active);
    EXPECT_EQ(static_cast<int>(out.exit_logits.size()), cfg.num_exits())
        << "failed device " << failed;
  }
}

TEST_P(PresetGrid, StateRoundTripPreservesForward) {
  const auto cfg = DdnnConfig::preset(GetParam());
  DdnnModel original(cfg);
  original.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto views = grid_views(cfg.num_devices);
  const auto before = original.forward(views);

  // Unique per preset: ctest runs the instances in parallel.
  const std::string path = ::testing::TempDir() + "/ddnn_grid_state_" +
                           std::to_string(static_cast<int>(GetParam())) +
                           ".bin";
  nn::save_state(original, path);
  DdnnConfig other_init = cfg;
  other_init.init_seed = cfg.init_seed + 17;
  DdnnModel restored(other_init);
  nn::load_state(restored, path);
  restored.set_training(false);
  const auto after = restored.forward(views);
  for (std::size_t e = 0; e < before.exit_logits.size(); ++e) {
    EXPECT_TRUE(before.exit_logits[e].value().allclose(
        after.exit_logits[e].value(), 0.0f));
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetGrid,
    ::testing::Values(HierarchyPreset::kCloudOnly,
                      HierarchyPreset::kDeviceCloud,
                      HierarchyPreset::kDevicesCloud,
                      HierarchyPreset::kDeviceEdgeCloud,
                      HierarchyPreset::kDevicesEdgeCloud,
                      HierarchyPreset::kDevicesEdgesCloud));

// ------------------------------------------- aggregation x precision grid

using AggPrecisionParam = std::tuple<AggKind, AggKind, bool, bool>;

class AggPrecisionGrid : public ::testing::TestWithParam<AggPrecisionParam> {};

TEST_P(AggPrecisionGrid, BuildsTrainsATapeAndEvaluates) {
  const auto [local, cloud, float_cloud, float_devices] = GetParam();
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 3);
  cfg.local_agg = local;
  cfg.cloud_agg = cloud;
  cfg.float_cloud = float_cloud;
  cfg.float_devices = float_devices;
  DdnnModel model(cfg);

  // Training mode: tape must reach both exits.
  model.set_training(true);
  const auto views = grid_views(3);
  const auto out = model.forward(views);
  EXPECT_TRUE(out.exit_logits[0].requires_grad());
  EXPECT_TRUE(out.exit_logits[1].requires_grad());

  // Eval mode without a tape.
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto eval_out = model.forward(views);
  EXPECT_FALSE(eval_out.exit_logits[1].requires_grad());
  // Device features are binary iff devices are binary.
  bool all_binary = true;
  for (std::int64_t i = 0; i < eval_out.device_features[0].numel(); ++i) {
    const float v = eval_out.device_features[0].value()[i];
    all_binary = all_binary && (v == 1.0f || v == -1.0f);
  }
  EXPECT_EQ(all_binary, !float_devices);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AggPrecisionGrid,
    ::testing::Combine(::testing::Values(AggKind::kMaxPool, AggKind::kAvgPool,
                                         AggKind::kConcat, AggKind::kGatedAvg),
                       ::testing::Values(AggKind::kMaxPool, AggKind::kConcat,
                                         AggKind::kGatedAvg),
                       ::testing::Bool(), ::testing::Bool()));

// ---------------------------------------------------------- filter sweep

class FilterGrid : public ::testing::TestWithParam<int> {};

TEST_P(FilterGrid, GeometryAndMemoryScaleWithFilters) {
  const int f = GetParam();
  const auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 6, f);
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(grid_views(6));
  EXPECT_EQ(out.device_features[0].shape(), Shape({2, f, 16, 16}));
  EXPECT_EQ(cfg.comm_params().filters, f);
  EXPECT_LT(model.device_memory_bytes(), 2048);
  if (f >= 4) {
    const auto smaller =
        DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 6, f / 2);
    DdnnModel small_model(smaller);
    EXPECT_GT(model.device_memory_bytes(), small_model.device_memory_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Filters, FilterGrid,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

}  // namespace
}  // namespace ddnn::core
