// Edge-case and API-contract tests that don't fit a single module file:
// double-backward accumulation semantics, degenerate configurations,
// runtime parameterization, and dataset-configuration corners.
#include <gtest/gtest.h>

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "dist/runtime.hpp"
#include "nn/layers.hpp"
#include "util/error.hpp"

namespace ddnn {
namespace {

using autograd::Variable;

// ------------------------------------------------------------ autograd API

TEST(AutogradEdge, BackwardTwiceAccumulatesIntoGrad) {
  // Documented semantics: gradients ACCUMULATE until zero_grad(); a second
  // backward over a fresh tape adds to the existing buffer.
  Variable p = Variable::parameter(Tensor::full(Shape{2}, 1.0f));
  for (int pass = 0; pass < 2; ++pass) {
    Variable y = autograd::mul_scalar(p, 3.0f);
    Variable flat = autograd::reshape(y, Shape{1, 2});
    autograd::matmul(flat, Variable(Tensor::ones(Shape{2, 1}))).backward();
  }
  EXPECT_FLOAT_EQ(p.grad()[0], 6.0f);
  p.zero_grad();
  EXPECT_FLOAT_EQ(p.grad()[0], 0.0f);
}

TEST(AutogradEdge, DetachInMiddleOfChainStopsUpstreamFlow) {
  Variable p = Variable::parameter(Tensor::full(Shape{2}, 2.0f));
  Variable h = autograd::mul_scalar(p, 5.0f);
  Variable cut = h.detach();
  Variable y = autograd::mul_scalar(cut, 2.0f);
  EXPECT_FALSE(y.requires_grad());
  // Values still flow.
  EXPECT_FLOAT_EQ(y.value()[0], 20.0f);
}

TEST(AutogradEdge, ReshapeChainsShareStorageAndGradFlows) {
  Variable p = Variable::parameter(Tensor::full(Shape{2, 3}, 1.0f));
  Variable a = autograd::reshape(p, Shape{3, 2});
  Variable b = autograd::reshape(a, Shape{6, 1});
  autograd::matmul(Variable(Tensor::ones(Shape{1, 6})), b).backward();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(p.grad()[i], 1.0f);
}

TEST(AutogradEdge, AccumulateGradRejectsShapeMismatch) {
  Variable p = Variable::parameter(Tensor::zeros(Shape{2, 2}));
  EXPECT_THROW(p.accumulate_grad(Tensor::zeros(Shape{4})), Error);
}

TEST(AutogradEdge, ScalarHelpers) {
  const Tensor s = Tensor::scalar(2.5f);
  EXPECT_EQ(s.shape(), Shape({1}));
  EXPECT_FLOAT_EQ(s[0], 2.5f);
}

// ------------------------------------------------------------------ layers

TEST(NnEdge, EmptySequentialIsIdentity) {
  nn::Sequential seq;
  Variable x(Tensor::full(Shape{2, 2}, 3.0f));
  EXPECT_TRUE(seq.forward(x).value().allclose(x.value(), 0.0f));
}

TEST(NnEdge, BatchNormRejectsWrongFeatureCount) {
  nn::BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Variable(Tensor::zeros(Shape{8, 3}))), Error);
  EXPECT_THROW(bn.forward(Variable(Tensor::zeros(Shape{2, 3, 4, 4}))), Error);
}

TEST(NnEdge, LayersRejectDegenerateDimensions) {
  Rng rng(1);
  EXPECT_THROW(nn::Linear(0, 3, rng), Error);
  EXPECT_THROW(nn::BinaryLinear(3, 0, rng), Error);
  EXPECT_THROW(nn::Conv2d(0, 4, 3, 1, 1, rng), Error);
  EXPECT_THROW(nn::BatchNorm(0), Error);
}

// ----------------------------------------------------------------- dataset

TEST(DataEdge, DegenerateClassPriorYieldsSingleClass) {
  data::MvmcConfig cfg;
  cfg.train_samples = 20;
  cfg.test_samples = 5;
  cfg.class_prior = {1.0, 0.0, 0.0};
  const auto ds = data::MvmcDataset::generate(cfg);
  for (const auto& s : ds.train()) EXPECT_EQ(s.label, 0);
}

TEST(DataEdge, CustomProfilesAreRespected) {
  data::MvmcConfig cfg;
  cfg.train_samples = 60;
  cfg.test_samples = 5;
  cfg.profiles = data::default_profiles(6);
  cfg.profiles[0].presence_prob = 1.0;  // always sees the object
  const auto ds = data::MvmcDataset::generate(cfg);
  for (const auto& s : ds.train()) EXPECT_TRUE(s.present[0]);
}

TEST(DataEdge, ConfigValidation) {
  data::MvmcConfig cfg;
  cfg.num_devices = 0;
  EXPECT_THROW(data::MvmcDataset::generate(cfg), Error);
  data::MvmcConfig cfg2;
  cfg2.class_prior = {0.5, 0.5};  // wrong size for 3 classes
  EXPECT_THROW(data::MvmcDataset::generate(cfg2), Error);
}

TEST(DataEdge, SingleDeviceDatasetWorks) {
  data::MvmcConfig cfg;
  cfg.num_devices = 1;
  cfg.train_samples = 10;
  cfg.test_samples = 2;
  const auto ds = data::MvmcDataset::generate(cfg);
  // With one device, every sample must be visible on it (re-draw rule).
  for (const auto& s : ds.train()) EXPECT_TRUE(s.present[0]);
}

// ------------------------------------------------------------------- core

TEST(CoreEdge, PresetHonoursCustomDevicesAndFilters) {
  const auto cfg =
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud, 4, 8);
  EXPECT_EQ(cfg.num_devices, 4);
  EXPECT_EQ(cfg.device_filters, 8);
  EXPECT_EQ(cfg.comm_params().filters, 8);
}

TEST(CoreEdge, EvaluateExitsRejectsEmptySet) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  const std::vector<data::MvmcSample> empty;
  EXPECT_THROW(
      core::evaluate_exits(model, empty, {0, 1, 2, 3, 4, 5}), Error);
}

TEST(CoreEdge, ExitAccuracyValidatesIndex) {
  core::ExitEval eval;
  eval.exit_probs.push_back(Tensor::from_vector(Shape{1, 3}, {1, 0, 0}));
  eval.labels = {0};
  EXPECT_THROW(core::exit_accuracy(eval, 1), Error);
  EXPECT_DOUBLE_EQ(core::exit_accuracy(eval, 0), 1.0);
}

TEST(CoreEdge, TrainerRejectsDeviceCountMismatch) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 8;
  dcfg.test_samples = 2;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig tcfg;
  tcfg.epochs = 1;
  EXPECT_THROW(core::train_ddnn(model, ds.train(), {0, 1}, tcfg), Error);
}

TEST(CoreEdge, LrScheduleIsApplied) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 16;
  dcfg.test_samples = 2;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig tcfg;
  tcfg.epochs = 2;
  std::vector<int> schedule_calls;
  tcfg.lr_schedule = [&](int epoch) {
    schedule_calls.push_back(epoch);
    return 1e-3f * (epoch == 0 ? 1.0f : 0.1f);
  };
  core::train_ddnn(model, ds.train(), {0, 1, 2, 3, 4, 5}, tcfg);
  EXPECT_EQ(schedule_calls, (std::vector<int>{0, 1}));
}

// ------------------------------------------------------------------- dist

TEST(DistEdge, CustomLinkParametersChangeLatencyNotBytes) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 8;
  dcfg.test_samples = 6;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  dist::RuntimeConfig fast;
  fast.device_link.bandwidth_bytes_per_s = 1e9;
  fast.device_link.base_latency_s = 0.0;
  dist::RuntimeConfig slow;
  slow.device_link.bandwidth_bytes_per_s = 1e3;
  slow.device_link.base_latency_s = 0.1;

  dist::HierarchyRuntime a(model, {0.5}, devices, fast);
  dist::HierarchyRuntime b(model, {0.5}, devices, slow);
  a.run(ds.test());
  b.run(ds.test());
  EXPECT_EQ(a.metrics().total_bytes, b.metrics().total_bytes);
  EXPECT_LT(a.metrics().mean_latency_s(), b.metrics().mean_latency_s());
}

TEST(DistEdge, TraceBytesSumToMetricsTotal) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 8;
  dcfg.test_samples = 10;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  dist::HierarchyRuntime runtime(model, {0.5}, {0, 1, 2, 3, 4, 5});
  std::int64_t sum = 0;
  for (const auto& s : ds.test()) sum += runtime.classify(s).bytes_sent;
  EXPECT_EQ(sum, runtime.metrics().total_bytes);
}

TEST(DistEdge, ResetMetricsClearsEverything) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 8;
  dcfg.test_samples = 4;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  dist::HierarchyRuntime runtime(model, {0.5}, {0, 1, 2, 3, 4, 5});
  runtime.run(ds.test());
  ASSERT_GT(runtime.metrics().samples, 0);
  runtime.reset_metrics();
  EXPECT_EQ(runtime.metrics().samples, 0);
  EXPECT_EQ(runtime.metrics().total_bytes, 0);
  for (const auto& link : runtime.device_gateway_links()) {
    EXPECT_EQ(link.stats().bytes, 0);
  }
}

TEST(DistEdge, RecoveredDeviceTransmitsAgain) {
  data::MvmcConfig dcfg;
  dcfg.train_samples = 8;
  dcfg.test_samples = 4;
  const auto ds = data::MvmcDataset::generate(dcfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  dist::HierarchyRuntime runtime(model, {1.0}, {0, 1, 2, 3, 4, 5});
  runtime.set_device_failed(0, true);
  runtime.run(ds.test());
  EXPECT_EQ(runtime.metrics().device_bytes[0], 0);
  runtime.set_device_failed(0, false);
  runtime.reset_metrics();
  runtime.run(ds.test());
  EXPECT_GT(runtime.metrics().device_bytes[0], 0);
}

}  // namespace
}  // namespace ddnn
