#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "data/loader.hpp"
#include "data/mvmc.hpp"
#include "data/ppm.hpp"
#include "data/renderer.hpp"
#include "util/error.hpp"

namespace ddnn::data {
namespace {

MvmcConfig small_config(std::uint64_t seed = 7) {
  MvmcConfig cfg;
  cfg.train_samples = 40;
  cfg.test_samples = 10;
  cfg.seed = seed;
  return cfg;
}

TEST(Renderer, CanvasClipsToUnitRange) {
  Canvas c(8);
  c.fill({2.0f, -1.0f, 0.5f});
  c.clip();
  const Tensor t = c.to_tensor();
  EXPECT_FLOAT_EQ(t[0], 1.0f);  // R channel clipped high
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], 0.0f);
    EXPECT_LE(t[i], 1.0f);
  }
}

TEST(Renderer, OutOfBoundsDrawsAreIgnored) {
  Canvas c(8);
  c.set(-1, 0, {1, 1, 1});
  c.set(0, 100, {1, 1, 1});
  c.fill_rect(-5, -5, 100, 100, {0.25f, 0.25f, 0.25f});  // clipped, no crash
  const Tensor t = c.to_tensor();
  EXPECT_FLOAT_EQ(t[0], 0.25f);
}

TEST(Renderer, BlankFrameIsUniformGrey) {
  const Tensor blank = blank_frame(32);
  EXPECT_EQ(blank.shape(), Shape({3, 32, 32}));
  for (std::int64_t i = 0; i < blank.numel(); ++i) {
    EXPECT_FLOAT_EQ(blank[i], 0.5f);
  }
}

TEST(Renderer, ClassesProduceDistinctImages) {
  Viewpoint view;
  Rng rng(3);
  std::vector<Tensor> images;
  for (int cls = 0; cls < 3; ++cls) {
    Canvas c(32);
    render_background(c, view, rng);
    Rng obj_rng(42);  // same placement for all classes
    render_object(c, static_cast<ObjectClass>(cls), view, 1.0f,
                  {0.6f, 0.6f, 0.6f}, obj_rng);
    c.clip();
    images.push_back(c.to_tensor());
  }
  // Pairwise L2 distances must be substantial (colour + shape differ).
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      double dist = 0;
      for (std::int64_t i = 0; i < images[0].numel(); ++i) {
        const double d = images[a][i] - images[b][i];
        dist += d * d;
      }
      EXPECT_GT(dist, 10.0) << "classes " << a << " vs " << b;
    }
  }
}

TEST(Renderer, MirroredViewpointFlipsPlacement) {
  Rng rng_a(5), rng_b(5);
  Viewpoint plain;
  Viewpoint mirrored;
  mirrored.mirrored = true;
  Canvas a(32), b(32);
  render_object(a, ObjectClass::kPerson, plain, 1.0f, {0.6f, 0.6f, 0.6f},
                rng_a);
  render_object(b, ObjectClass::kPerson, mirrored, 1.0f, {0.6f, 0.6f, 0.6f},
                rng_b);
  const Tensor ta = a.to_tensor(), tb = b.to_tensor();
  // Same jitter stream, mirrored placement: images differ unless the jitter
  // landed exactly on the axis (it does not for this seed).
  EXPECT_FALSE(ta.allclose(tb, 1e-6f));
}

TEST(Mvmc, GenerateIsDeterministic) {
  const auto a = MvmcDataset::generate(small_config());
  const auto b = MvmcDataset::generate(small_config());
  ASSERT_EQ(a.train().size(), b.train().size());
  for (std::size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].label, b.train()[i].label);
    for (int d = 0; d < a.num_devices(); ++d) {
      EXPECT_TRUE(a.train()[i].views[d].allclose(b.train()[i].views[d], 0.0f));
    }
  }
}

TEST(Mvmc, DifferentSeedsProduceDifferentData) {
  const auto a = MvmcDataset::generate(small_config(1));
  const auto b = MvmcDataset::generate(small_config(2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train().size() && !any_diff; ++i) {
    any_diff = a.train()[i].label != b.train()[i].label ||
               !a.train()[i].views[5].allclose(b.train()[i].views[5], 1e-6f);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Mvmc, SplitSizesMatchPaper) {
  MvmcConfig cfg;  // defaults
  EXPECT_EQ(cfg.train_samples, 680);
  EXPECT_EQ(cfg.test_samples, 171);
  EXPECT_EQ(cfg.num_devices, 6);
  EXPECT_EQ(cfg.num_classes, 3);
}

TEST(Mvmc, EverySampleVisibleSomewhere) {
  const auto ds = MvmcDataset::generate(small_config());
  for (const auto& s : ds.train()) {
    bool any = false;
    for (const bool p : s.present) any = any || p;
    EXPECT_TRUE(any);
  }
}

TEST(Mvmc, AbsentViewsAreBlankPresentViewsAreNot) {
  const auto ds = MvmcDataset::generate(small_config());
  const Tensor blank = blank_frame(32);
  for (const auto& s : ds.train()) {
    for (int d = 0; d < ds.num_devices(); ++d) {
      if (!s.present[d]) {
        EXPECT_TRUE(s.views[d].allclose(blank, 0.0f));
      } else {
        EXPECT_FALSE(s.views[d].allclose(blank, 1e-3f));
      }
    }
  }
}

TEST(Mvmc, LabelsInRange) {
  const auto ds = MvmcDataset::generate(small_config());
  for (const auto& s : ds.train()) {
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 3);
  }
}

TEST(Mvmc, PresenceRatesFollowProfiles) {
  MvmcConfig cfg;
  cfg.train_samples = 600;
  cfg.test_samples = 10;
  const auto ds = MvmcDataset::generate(cfg);
  for (int d = 0; d < 6; ++d) {
    int present = 0;
    for (const auto& s : ds.train()) present += s.present[d];
    const double rate = static_cast<double>(present) / 600.0;
    // The re-draw-until-visible loop inflates rates slightly; allow slack.
    EXPECT_NEAR(rate, ds.config().profiles[d].presence_prob, 0.08) << d;
  }
  // Monotone quality ordering: last device sees the object far more often
  // than the first.
  int first = 0, last = 0;
  for (const auto& s : ds.train()) {
    first += s.present[0];
    last += s.present[5];
  }
  EXPECT_GT(last, first + 100);
}

TEST(Mvmc, DistributionTableShape) {
  const auto ds = MvmcDataset::generate(small_config());
  const Table t = ds.distribution_table();
  EXPECT_EQ(t.row_count(), 6u);
  EXPECT_NE(t.to_string().find("Not-present"), std::string::npos);
}

TEST(Mvmc, DefaultProfilesCycleForMoreDevices) {
  const auto p = default_profiles(8);
  EXPECT_EQ(p.size(), 8u);
  EXPECT_DOUBLE_EQ(p[6].presence_prob, p[0].presence_prob);
}

TEST(Mvmc, ClassNames) {
  EXPECT_EQ(class_name(0), "car");
  EXPECT_EQ(class_name(1), "bus");
  EXPECT_EQ(class_name(2), "person");
  EXPECT_EQ(class_name(-1), "unknown");
}

TEST(Loader, BatchShapesAndLabels) {
  const auto ds = MvmcDataset::generate(small_config());
  const std::vector<std::size_t> idx{0, 3, 5};
  const Batch b = make_batch(ds.train(), idx, {0, 2, 4});
  ASSERT_EQ(b.views.size(), 3u);
  EXPECT_EQ(b.views[0].shape(), Shape({3, 3, 32, 32}));
  EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(b.labels[1], ds.train()[3].label);
  EXPECT_EQ(b.present[2][1], ds.train()[3].present[4]);
}

TEST(Loader, BatchCopiesCorrectViewData) {
  const auto ds = MvmcDataset::generate(small_config());
  const Batch b = make_batch(ds.train(), {2}, {1});
  const Tensor& src = ds.train()[2].views[1];
  for (std::int64_t i = 0; i < src.numel(); ++i) {
    EXPECT_FLOAT_EQ(b.views[0][i], src[i]);
  }
}

TEST(Loader, PresentIndicesFilter) {
  const auto ds = MvmcDataset::generate(small_config());
  const auto idx = present_indices(ds.train(), 0);
  for (const auto i : idx) EXPECT_TRUE(ds.train()[i].present[0]);
  std::size_t absent = ds.train().size() - idx.size();
  std::size_t check = 0;
  for (const auto& s : ds.train()) check += !s.present[0];
  EXPECT_EQ(absent, check);
}

TEST(Loader, ChunkBatchesCoverAllIndicesInOrder) {
  auto chunks = chunk_batches(all_indices(10), 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size(), 4u);
  EXPECT_EQ(chunks[2].size(), 2u);
  EXPECT_EQ(chunks[2][1], 9u);
}

TEST(Loader, EpochBatchesArePermutations) {
  Rng rng(5);
  auto chunks = epoch_batches(20, 6, rng);
  std::set<std::size_t> seen;
  for (const auto& c : chunks) {
    for (const auto i : c) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Ppm, RoundTripIsLosslessAtByteResolution) {
  Rng rng(9);
  // Quantize first so the round trip is exact.
  Tensor img(Shape{3, 8, 6});
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(rng.uniform_index(256)) / 255.0f;
  }
  const std::string path = ::testing::TempDir() + "/ddnn_test.ppm";
  write_ppm(img, path);
  const Tensor back = read_ppm(path);
  EXPECT_EQ(back.shape(), img.shape());
  EXPECT_TRUE(back.allclose(img, 0.5f / 255.0f));
  std::filesystem::remove(path);
}

TEST(Ppm, ClipsOutOfRangeValues) {
  const std::string path = ::testing::TempDir() + "/ddnn_clip.ppm";
  Tensor img = Tensor::full(Shape{3, 2, 2}, 2.0f);
  img[0] = -1.0f;
  write_ppm(img, path);
  const Tensor back = read_ppm(path);
  EXPECT_FLOAT_EQ(back[0], 0.0f);
  EXPECT_FLOAT_EQ(back[1], 1.0f);
  std::filesystem::remove(path);
}

TEST(Ppm, ValidatesShapeAndFormat) {
  EXPECT_THROW(write_ppm(Tensor(Shape{1, 4, 4}), "/tmp/x.ppm"), Error);
  EXPECT_THROW(read_ppm("/nonexistent/ddnn.ppm"), Error);
}

TEST(Ppm, WritesEveryDeviceView) {
  const auto ds = MvmcDataset::generate(small_config());
  const std::string prefix = ::testing::TempDir() + "/ddnn_sample";
  EXPECT_EQ(write_sample_views(ds.test()[0], prefix), 6);
  for (int d = 1; d <= 6; ++d) {
    const std::string path = prefix + "_dev" + std::to_string(d) + ".ppm";
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::filesystem::remove(path);
  }
}

TEST(Loader, RejectsEmptyBatch) {
  const auto ds = MvmcDataset::generate(small_config());
  EXPECT_THROW(make_batch(ds.train(), {}, {0}), Error);
  EXPECT_THROW(make_batch(ds.train(), {0}, {}), Error);
  EXPECT_THROW(make_batch(ds.train(), {0}, {17}), Error);
}

}  // namespace
}  // namespace ddnn::data
