// Property-based test suites: each TEST_P sweeps a family of inputs and
// checks an invariant that must hold for every member — round trips,
// adjointness, ranking equivalences, policy monotonicity, aggregation
// bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "autograd/ops.hpp"
#include "core/aggregator.hpp"
#include "core/comm_cost.hpp"
#include "core/entropy.hpp"
#include "core/inference.hpp"
#include "gradcheck.hpp"
#include "tensor/bitpack.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"

namespace ddnn {
namespace {

using autograd::Variable;

// ------------------------------------------------------- bit-pack round trip

class BitpackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitpackRoundTrip, IsExactForAnySize) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  const Tensor t = ops::sign(Tensor::randn(Shape{n}, rng));
  const auto bytes = pack_signs(t);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), packed_size_bytes(n));
  EXPECT_TRUE(unpack_signs(bytes, Shape{n}).allclose(t, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitpackRoundTrip,
                         ::testing::Values(1, 2, 7, 8, 9, 15, 16, 17, 63, 64,
                                           65, 255, 256, 257, 1024, 4096));

// --------------------------------------------------------- im2col adjointness

struct Geometry {
  std::int64_t channels, h, w, kernel, stride, pad;
};

class Im2colAdjoint : public ::testing::TestWithParam<Geometry> {};

TEST_P(Im2colAdjoint, InnerProductIdentity) {
  const auto g = GetParam();
  const Conv2dGeometry geom{.in_channels = g.channels,
                            .in_h = g.h,
                            .in_w = g.w,
                            .kernel_h = g.kernel,
                            .kernel_w = g.kernel,
                            .stride = g.stride,
                            .pad = g.pad};
  Rng rng(3);
  const Tensor x = Tensor::randn(Shape{2, g.channels, g.h, g.w}, rng);
  const Tensor cols = im2col(x, geom);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, geom, 2);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 + 1e-4 * std::fabs(lhs));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(Geometry{1, 4, 4, 3, 1, 1}, Geometry{3, 8, 8, 3, 1, 1},
                      Geometry{2, 8, 8, 3, 2, 1}, Geometry{4, 16, 16, 3, 2, 1},
                      Geometry{2, 5, 7, 3, 1, 1}, Geometry{1, 6, 6, 1, 1, 0},
                      Geometry{2, 9, 9, 5, 2, 2}, Geometry{3, 32, 32, 3, 1, 1}));

// ------------------------------------------------------ conv gradient checks

class ConvGradCheck : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvGradCheck, AnalyticMatchesNumeric) {
  const auto g = GetParam();
  Rng rng(11);
  Variable x = Variable::parameter(
      Tensor::randn(Shape{1, g.channels, g.h, g.w}, rng));
  Variable w = Variable::parameter(
      Tensor::randn(Shape{2, g.channels, g.kernel, g.kernel}, rng));
  testing::expect_gradients_match(
      [&] {
        Variable y = autograd::conv2d(x, w, Variable(), g.stride, g.pad);
        Variable flat = autograd::reshape(y, Shape{1, y.numel()});
        return autograd::matmul(flat,
                                Variable(Tensor::ones(Shape{y.numel(), 1})));
      },
      {x, w}, 1e-2f, 3e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheck,
    ::testing::Values(Geometry{1, 4, 4, 3, 1, 1}, Geometry{2, 5, 5, 3, 1, 1},
                      Geometry{2, 6, 6, 3, 2, 1}, Geometry{3, 4, 4, 1, 1, 0}));

// ------------------------------------------------------- entropy properties

class EntropyProperties : public ::testing::TestWithParam<int> {};

std::vector<float> random_distribution(Rng& rng, int c) {
  std::vector<float> p(static_cast<std::size_t>(c));
  float sum = 0;
  for (auto& v : p) {
    v = static_cast<float>(rng.uniform(0.01, 1.0));
    sum += v;
  }
  for (auto& v : p) v /= sum;
  return p;
}

TEST_P(EntropyProperties, RangeAndPermutationInvariance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int c : {2, 3, 5, 10}) {
    auto p = random_distribution(rng, c);
    const double h = core::normalized_entropy(p);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
    auto q = p;
    rng.shuffle(q);
    EXPECT_NEAR(core::normalized_entropy(q), h, 1e-9);
    // Uniform maximizes.
    const std::vector<float> uniform(static_cast<std::size_t>(c),
                                     1.0f / static_cast<float>(c));
    EXPECT_LE(h, core::normalized_entropy(uniform) + 1e-9);
  }
}

TEST_P(EntropyProperties, NormalizedAndUnnormalizedRankIdentically) {
  // The paper's normalized entropy is BranchyNet's entropy divided by
  // log |C|: for a fixed class count the two criteria order samples the same
  // way, so switching criteria only rescales the threshold axis.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto a = random_distribution(rng, 3);
  const auto b = random_distribution(rng, 3);
  const auto norm = core::ConfidenceCriterion::kNormalizedEntropy;
  const auto raw = core::ConfidenceCriterion::kUnnormalizedEntropy;
  const double na = core::confidence_score(a, norm);
  const double nb = core::confidence_score(b, norm);
  const double ua = core::confidence_score(a, raw);
  const double ub = core::confidence_score(b, raw);
  EXPECT_EQ(na < nb, ua < ub);
  EXPECT_NEAR(ua, na * std::log(3.0), 1e-9);
}

TEST_P(EntropyProperties, AllCriteriaAgreeOnConfidentVsUniform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const std::vector<float> confident{0.96f, 0.02f, 0.02f};
  const std::vector<float> uniform{1.0f / 3, 1.0f / 3, 1.0f / 3};
  for (const auto criterion :
       {core::ConfidenceCriterion::kNormalizedEntropy,
        core::ConfidenceCriterion::kUnnormalizedEntropy,
        core::ConfidenceCriterion::kMaxProbability}) {
    EXPECT_LT(core::confidence_score(confident, criterion),
              core::confidence_score(uniform, criterion));
    EXPECT_LE(core::confidence_score(uniform, criterion),
              core::max_confidence_score(3, criterion) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyProperties, ::testing::Range(0, 12));

// ------------------------------------------------------- policy invariants

class PolicyInvariants : public ::testing::TestWithParam<int> {};

core::ExitEval random_eval(Rng& rng, std::int64_t n) {
  core::ExitEval eval;
  eval.exit_names = {"local", "cloud"};
  for (int e = 0; e < 2; ++e) {
    Tensor probs(Shape{n, 3});
    for (std::int64_t i = 0; i < n; ++i) {
      const auto p = random_distribution(rng, 3);
      for (std::int64_t j = 0; j < 3; ++j) {
        probs.at(i, j) = p[static_cast<std::size_t>(j)];
      }
    }
    eval.exit_probs.push_back(probs);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    eval.labels.push_back(static_cast<std::int64_t>(rng.uniform_index(3)));
  }
  return eval;
}

TEST_P(PolicyInvariants, FractionsSumToOneAndAreMonotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto eval = random_eval(rng, 64);
  double prev_local = -1.0;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += 0.1) {
    const auto r = core::apply_policy(eval, {t});
    double sum = 0;
    for (double f : r.exit_fraction) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GE(r.local_exit_fraction() + 1e-12, prev_local);
    prev_local = r.local_exit_fraction();
    EXPECT_GE(r.overall_accuracy, 0.0);
    EXPECT_LE(r.overall_accuracy, 1.0);
    // Every decision's entropy must respect the exit rule.
    for (const auto& d : r.decisions) {
      if (d.exit_taken == 0) EXPECT_LE(d.entropy, t + 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(core::apply_policy(eval, {1.0}).local_exit_fraction(),
                   1.0);
  EXPECT_DOUBLE_EQ(
      core::apply_policy(eval, {1.0}).overall_accuracy,
      core::exit_accuracy(eval, 0));
  EXPECT_DOUBLE_EQ(
      core::apply_policy(eval, {0.0}).overall_accuracy,
      core::exit_accuracy(eval, 1));
}

TEST_P(PolicyInvariants, ThresholdSearchIsAtLeastAsGoodAsEndpoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const auto eval = random_eval(rng, 48);
  const double t = core::search_threshold_best_overall(eval, 0.1);
  const double best = core::apply_policy(eval, {t}).overall_accuracy;
  EXPECT_GE(best + 1e-12, core::exit_accuracy(eval, 0));
  EXPECT_GE(best + 1e-12, core::exit_accuracy(eval, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariants, ::testing::Range(0, 10));

// ---------------------------------------------------- aggregation properties

class AggregationProperties : public ::testing::TestWithParam<int> {};

TEST_P(AggregationProperties, MaxDominatesAndMeanIsBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  std::vector<Variable> xs;
  for (int i = 0; i < 4; ++i) {
    xs.emplace_back(Tensor::randn(Shape{3, 5}, rng));
  }
  const Tensor mx = autograd::stack_max(xs).value();
  const Tensor mean = autograd::stack_mean(xs).value();
  for (std::int64_t j = 0; j < mx.numel(); ++j) {
    float lo = xs[0].value()[j], hi = xs[0].value()[j];
    for (const auto& x : xs) {
      lo = std::min(lo, x.value()[j]);
      hi = std::max(hi, x.value()[j]);
    }
    EXPECT_FLOAT_EQ(mx[j], hi);
    EXPECT_GE(mean[j], lo - 1e-6f);
    EXPECT_LE(mean[j], hi + 1e-6f);
  }
}

TEST_P(AggregationProperties, MaskedPoolingIgnoresInactiveValues) {
  // For MP/AP, the *content* of a failed branch must not affect the output.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  core::VectorAggregator mp(core::AggKind::kMaxPool, 3, 4, rng);
  core::VectorAggregator ap(core::AggKind::kAvgPool, 3, 4, rng);
  std::vector<Variable> a{Variable(Tensor::randn(Shape{2, 4}, rng)),
                          Variable(Tensor::randn(Shape{2, 4}, rng)),
                          Variable(Tensor::randn(Shape{2, 4}, rng))};
  auto b = a;
  b[1] = Variable(Tensor::full(Shape{2, 4}, 1e6f));  // garbage in failed slot
  const std::vector<bool> mask{true, false, true};
  EXPECT_TRUE(mp.forward(a, mask).value().allclose(
      mp.forward(b, mask).value(), 0.0f));
  EXPECT_TRUE(ap.forward(a, mask).value().allclose(
      ap.forward(b, mask).value(), 0.0f));
}

TEST_P(AggregationProperties, GatedSumIsConvexCombination) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 700);
  std::vector<Variable> xs;
  for (int i = 0; i < 3; ++i) {
    xs.emplace_back(Tensor::randn(Shape{2, 4}, rng));
  }
  Variable gates(Tensor::randn(Shape{3}, rng));
  const Tensor out =
      autograd::stack_gated_sum(xs, gates, {true, true, true}).value();
  for (std::int64_t j = 0; j < out.numel(); ++j) {
    float lo = xs[0].value()[j], hi = xs[0].value()[j];
    for (const auto& x : xs) {
      lo = std::min(lo, x.value()[j]);
      hi = std::max(hi, x.value()[j]);
    }
    EXPECT_GE(out[j], lo - 1e-5f);
    EXPECT_LE(out[j], hi + 1e-5f);
  }
}

TEST_P(AggregationProperties, GatedSumRenormalizesUnderFailure) {
  // With equal gates, GA over the active subset equals the masked mean.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  std::vector<Variable> xs;
  for (int i = 0; i < 3; ++i) {
    xs.emplace_back(Tensor::randn(Shape{2, 3}, rng));
  }
  Variable gates(Tensor::zeros(Shape{3}));
  const std::vector<bool> mask{true, false, true};
  const Tensor ga = autograd::stack_gated_sum(xs, gates, mask).value();
  const Tensor mean = autograd::stack_mean({xs[0], xs[2]}).value();
  EXPECT_TRUE(ga.allclose(mean, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationProperties, ::testing::Range(0, 8));

// ----------------------------------------------------- comm cost properties

class CommCostProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CommCostProperties, BoundsAndMonotonicity) {
  const auto [filters, classes] = GetParam();
  const core::CommParams p{.num_classes = classes,
                           .filters = filters,
                           .filter_output_bits = 256};
  const double floor = 4.0 * classes;
  const double ceil = floor + filters * 256.0 / 8.0;
  double prev = ceil + 1;
  for (double l = 0.0; l <= 1.0; l += 0.1) {
    const double c = core::ddnn_comm_bytes(l, p);
    EXPECT_GE(c, floor - 1e-9);
    EXPECT_LE(c, ceil + 1e-9);
    EXPECT_LT(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(core::ddnn_comm_bytes(1.0, p), floor);
  EXPECT_DOUBLE_EQ(core::ddnn_comm_bytes(0.0, p), ceil);
}

INSTANTIATE_TEST_SUITE_P(Grid, CommCostProperties,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 12),
                                            ::testing::Values(2, 3, 10)));

// ----------------------------------------------- gated-sum gradient checking

TEST(GatedSumGradCheck, BranchesAndGates) {
  Rng rng(77);
  Variable a = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable c = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable gates = Variable::parameter(Tensor::randn(Shape{3}, rng));
  Variable w(Tensor::randn(Shape{2, 3}, rng));
  testing::expect_gradients_match(
      [&] {
        Variable y =
            autograd::stack_gated_sum({a, b, c}, gates, {true, true, true});
        Variable prod = autograd::mul(y, w);
        Variable flat = autograd::reshape(prod, Shape{1, 6});
        return autograd::matmul(flat, Variable(Tensor::ones(Shape{6, 1})));
      },
      {a, b, c, gates}, 1e-2f, 2e-2f);
}

TEST(GatedSumGradCheck, MaskedBranchGetsNoGradient) {
  Rng rng(78);
  Variable a = Variable::parameter(Tensor::randn(Shape{1, 2}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{1, 2}, rng));
  Variable gates = Variable::parameter(Tensor::randn(Shape{2}, rng));
  Variable y = autograd::stack_gated_sum({a, b}, gates, {true, false});
  Variable flat = autograd::reshape(y, Shape{1, 2});
  autograd::matmul(flat, Variable(Tensor::ones(Shape{2, 1}))).backward();
  EXPECT_FALSE(b.has_grad() &&
               (b.grad()[0] != 0.0f || b.grad()[1] != 0.0f));
  // The active branch carries full weight (softmax over a single gate = 1).
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  // The masked gate's gradient is zero; the active one's is zero too since
  // its weight is pinned at 1.
  EXPECT_NEAR(gates.grad()[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(gates.grad()[1], 0.0f);
}

}  // namespace
}  // namespace ddnn
