#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_mode.hpp"
#include "core/inference.hpp"
#include "dist/link.hpp"
#include "dist/message.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

// ----------------------------------------------------------------- messages

TEST(Message, ClassScoresRoundTripIsExact) {
  const Tensor scores =
      Tensor::from_vector(Shape{1, 3}, {-1.25f, 3.5f, 0.0078125f});
  const Message msg = encode_class_scores(scores);
  EXPECT_EQ(msg.payload_bytes(), 12);  // 4 bytes * |C|, Eq. 1 first term
  const Tensor back = decode_class_scores(msg, 3);
  EXPECT_TRUE(back.allclose(scores, 0.0f));
}

TEST(Message, BinaryFeatureMapRoundTripIsExact) {
  Rng rng(3);
  const Tensor feats =
      ops::sign(Tensor::randn(Shape{1, 4, 16, 16}, rng));
  const Message msg = encode_binary_feature_map(feats);
  EXPECT_EQ(msg.payload_bytes(), 128);  // f*o/8 = 4*256/8, Eq. 1 second term
  const Tensor back = decode_binary_feature_map(msg, feats.shape());
  EXPECT_TRUE(back.allclose(feats, 0.0f));
}

TEST(Message, BinaryEncoderRejectsNonBinaryInput) {
  const Tensor not_binary = Tensor::from_vector(Shape{2}, {1.0f, 0.5f});
  EXPECT_THROW(encode_binary_feature_map(not_binary), Error);
}

TEST(Message, RawImageQuantizesTo1BytePerValue) {
  Rng rng(5);
  const Tensor img = Tensor::rand_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  const Message msg = encode_raw_image(img);
  EXPECT_EQ(msg.payload_bytes(), 3072);  // the paper's raw-offload cost
  const Tensor back = decode_raw_image(msg, img.shape());
  EXPECT_TRUE(back.allclose(img, 1.0f / 255.0f + 1e-6f));
}

TEST(Message, DecodersValidateKindAndSize) {
  const Message scores = encode_class_scores(Tensor::zeros(Shape{1, 3}));
  EXPECT_THROW(decode_binary_feature_map(scores, Shape{96}), Error);
  EXPECT_THROW(decode_class_scores(scores, 4), Error);
}

TEST(Message, RandomPayloadsNeverCrashDecoders) {
  // Fuzz: arbitrary byte payloads must either decode into a well-formed
  // tensor or throw ddnn::Error — never crash or produce the wrong size.
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Message msg;
    msg.kind = static_cast<MessageKind>(rng.uniform_index(3));
    msg.payload.resize(rng.uniform_index(64));
    for (auto& b : msg.payload) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    try {
      const Tensor t = decode_binary_feature_map(msg, Shape{32});
      EXPECT_EQ(t.numel(), 32);
      for (std::int64_t i = 0; i < 32; ++i) {
        EXPECT_TRUE(t[i] == 1.0f || t[i] == -1.0f);
      }
    } catch (const Error&) {
      // rejected: fine
    }
    try {
      const Tensor t = decode_class_scores(msg, 3);
      EXPECT_EQ(t.numel(), 3);
    } catch (const Error&) {
    }
    try {
      const Tensor t = decode_raw_image(msg, Shape{3, 2, 2});
      EXPECT_EQ(t.numel(), 12);
      for (std::int64_t i = 0; i < 12; ++i) {
        EXPECT_GE(t[i], 0.0f);
        EXPECT_LE(t[i], 1.0f);
      }
    } catch (const Error&) {
    }
  }
}

// -------------------------------------------------------------------- links

TEST(Link, AccountsBytesAndMessages) {
  Link link("test");
  link.transmit(encode_class_scores(Tensor::zeros(Shape{1, 3})));
  link.transmit(encode_class_scores(Tensor::zeros(Shape{1, 3})));
  EXPECT_EQ(link.stats().messages, 2);
  EXPECT_EQ(link.stats().bytes, 24);
  link.reset_stats();
  EXPECT_EQ(link.stats().bytes, 0);
}

TEST(Link, LatencyIsAffineInBytes) {
  Link link("test", {.bandwidth_bytes_per_s = 1000.0, .base_latency_s = 0.01});
  EXPECT_DOUBLE_EQ(link.latency_for(0), 0.01);
  EXPECT_DOUBLE_EQ(link.latency_for(500), 0.01 + 0.5);
  EXPECT_THROW(Link("bad", {.bandwidth_bytes_per_s = 0.0}), Error);
}

// ------------------------------------------------------------------ runtime

struct RuntimeFixture : public ::testing::Test {
  RuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(RuntimeFixture, DistributedMatchesCentralizedPredictions) {
  // The key systems invariant: running the partitioned model over the
  // simulated hierarchy (with bit-packed feature transport) must reproduce
  // the centralized forward pass exactly, for every sample and threshold.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  const double threshold = 0.5;

  const auto eval =
      core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, {threshold});

  HierarchyRuntime runtime(model, {threshold}, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
    EXPECT_NEAR(trace.entropy, central.decisions[i].entropy, 1e-9) << i;
  }
}

TEST_F(RuntimeFixture, MeasuredBytesMatchEq1Exactly) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.6}, devices);
  const auto metrics = runtime.run(dataset->test());

  const double local_fraction =
      static_cast<double>(metrics.exit_counts[0]) /
      static_cast<double>(metrics.samples);
  const double analytic =
      core::ddnn_comm_bytes(local_fraction, model.config().comm_params());
  for (int d = 0; d < 6; ++d) {
    EXPECT_NEAR(metrics.device_bytes_per_sample(d), analytic, 1e-9) << d;
  }
}

TEST_F(RuntimeFixture, ThresholdOneNeverTouchesTheUplink) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {1.0}, devices);
  runtime.run(dataset->test());
  for (const auto& link : runtime.device_uplink_links()) {
    EXPECT_EQ(link.stats().bytes, 0);
  }
  EXPECT_EQ(runtime.metrics().exit_counts[0],
            static_cast<std::int64_t>(dataset->test().size()));
}

TEST_F(RuntimeFixture, ThresholdZeroAlwaysOffloads) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.0}, devices);
  runtime.run(dataset->test());
  // Every sample pays both the score vector and the feature map.
  const auto n = static_cast<std::int64_t>(dataset->test().size());
  for (const auto& link : runtime.device_uplink_links()) {
    EXPECT_EQ(link.stats().bytes, n * 128);
  }
  for (const auto& link : runtime.device_gateway_links()) {
    EXPECT_EQ(link.stats().bytes, n * 12);
  }
}

TEST_F(RuntimeFixture, FailedDeviceSendsNothingAndSystemStillWorks) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  runtime.set_device_failed(2, true);
  const auto metrics = runtime.run(dataset->test());
  EXPECT_EQ(metrics.device_bytes[2], 0);
  EXPECT_EQ(metrics.samples,
            static_cast<std::int64_t>(dataset->test().size()));
  // Failure path must match the centralized masked forward.
  std::vector<bool> active(6, true);
  active[2] = false;
  const auto eval =
      core::evaluate_exits(model, dataset->test(), devices, active);
  const auto central = core::apply_policy(eval, {0.5});
  EXPECT_DOUBLE_EQ(metrics.accuracy(), central.overall_accuracy);
}

TEST_F(RuntimeFixture, AllDevicesFailedDegradesToDeadTraces) {
  // Regression: this used to hard-abort via DDNN_CHECK mid-run. A sample no
  // tier can classify must be counted as a flagged dead trace instead.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  for (int d = 0; d < 6; ++d) runtime.set_device_failed(d, true);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_TRUE(trace.dead);
  EXPECT_TRUE(trace.degraded);
  EXPECT_EQ(trace.exit_taken, -1);
  EXPECT_EQ(trace.prediction, -1);
  EXPECT_DOUBLE_EQ(trace.entropy, 1.0);
  EXPECT_EQ(runtime.metrics().samples, 1);
  EXPECT_EQ(runtime.metrics().reliability.dead_samples, 1);
  EXPECT_EQ(runtime.metrics().correct, 0);

  // A revived device must sense afresh (its cache was cleared on failure)
  // and the system classifies normally again.
  runtime.set_device_failed(0, false);
  const auto healthy = runtime.classify(dataset->test()[0]);
  EXPECT_FALSE(healthy.dead);
  EXPECT_GE(healthy.exit_taken, 0);
  EXPECT_GE(healthy.prediction, 0);
}

TEST_F(RuntimeFixture, LatencyGrowsWhenSamplesEscalate) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime always_local(model, {1.0}, devices);
  HierarchyRuntime always_cloud(model, {0.0}, devices);
  always_local.run(dataset->test());
  always_cloud.run(dataset->test());
  EXPECT_LT(always_local.metrics().mean_latency_s(),
            always_cloud.metrics().mean_latency_s());
}

TEST_F(RuntimeFixture, EdgeConfigRunsThreeTiers) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  // Local never confident, edge always confident: everything exits at edge.
  HierarchyRuntime runtime(model, {0.0, 1.0}, devices);
  const auto metrics = runtime.run(dataset->test());
  EXPECT_EQ(metrics.exit_counts[0], 0);
  EXPECT_EQ(metrics.exit_counts[1],
            static_cast<std::int64_t>(dataset->test().size()));
  for (const auto& link : runtime.edge_cloud_links()) {
    EXPECT_EQ(link.stats().bytes, 0);  // cloud never reached
  }
}

TEST_F(RuntimeFixture, EdgeConfigMatchesCentralized) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  const std::vector<double> thresholds{0.4, 0.6};
  const auto eval = core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, thresholds);
  HierarchyRuntime runtime(model, thresholds, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
  }
}

TEST_F(RuntimeFixture, TwoEdgeGroupsMatchCentralized) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgesCloud));
  model.set_training(false);
  const std::vector<double> thresholds{0.4, 0.6};
  const auto eval = core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, thresholds);
  HierarchyRuntime runtime(model, thresholds, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
  }
}

// ----------------------------------------------------------------- queueing

std::vector<InferenceTrace> synthetic_traces(double escalate_fraction) {
  std::vector<InferenceTrace> traces;
  for (int i = 0; i < 100; ++i) {
    InferenceTrace t;
    const bool escalate =
        static_cast<double>(i) < 100.0 * escalate_fraction;
    t.exit_taken = escalate ? 1 : 0;
    t.latency_s = escalate ? 10e-3 : 2e-3;
    traces.push_back(t);
  }
  return traces;
}

TEST(Queueing, AllLocalTrafficIsLoadInsensitive) {
  const auto traces = synthetic_traces(0.0);
  QueueingConfig low{.arrival_rate_hz = 1.0, .cloud_service_s = 10e-3};
  QueueingConfig high{.arrival_rate_hz = 500.0, .cloud_service_s = 10e-3};
  const auto a = simulate_stream(traces, low, 1000);
  const auto b = simulate_stream(traces, high, 1000);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.escalated, 0);
  EXPECT_DOUBLE_EQ(a.cloud_utilization, 0.0);
}

TEST(Queueing, LightLoadAddsNoWaiting) {
  // At arrival rates far below 1/service, an escalated sample's latency is
  // just network + service.
  const auto traces = synthetic_traces(1.0);
  QueueingConfig cfg{.arrival_rate_hz = 0.5, .cloud_service_s = 10e-3};
  const auto stats = simulate_stream(traces, cfg, 500);
  EXPECT_NEAR(stats.mean_latency_s, 10e-3 + 10e-3, 1e-3);
  EXPECT_EQ(stats.escalated, 500);
}

TEST(Queueing, SaturationInflatesTailLatency) {
  const auto traces = synthetic_traces(1.0);
  QueueingConfig light{.arrival_rate_hz = 20.0, .cloud_service_s = 10e-3};
  QueueingConfig heavy{.arrival_rate_hz = 99.0, .cloud_service_s = 10e-3};
  const auto a = simulate_stream(traces, light, 2000);
  const auto b = simulate_stream(traces, heavy, 2000);
  EXPECT_GT(b.p95_latency_s, 2.0 * a.p95_latency_s);
  EXPECT_GT(b.cloud_utilization, a.cloud_utilization);
  EXPECT_LT(a.cloud_utilization, 0.5);
  EXPECT_GT(b.cloud_utilization, 0.8);
}

TEST(Queueing, LocalExitsShieldTheQueue) {
  // Same load: the mostly-local policy keeps p95 far below all-offload.
  QueueingConfig cfg{.arrival_rate_hz = 95.0, .cloud_service_s = 10e-3};
  const auto offload = simulate_stream(synthetic_traces(1.0), cfg, 2000);
  const auto mostly_local = simulate_stream(synthetic_traces(0.2), cfg, 2000);
  EXPECT_LT(mostly_local.p95_latency_s, offload.p95_latency_s / 2.0);
}

TEST(Queueing, DeterministicForSeed) {
  const auto traces = synthetic_traces(0.5);
  QueueingConfig cfg{.arrival_rate_hz = 50.0, .cloud_service_s = 10e-3,
                     .seed = 9};
  const auto a = simulate_stream(traces, cfg, 500);
  const auto b = simulate_stream(traces, cfg, 500);
  EXPECT_DOUBLE_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(Queueing, NearestRankPercentilePinsExactIndices) {
  // Regression: p95 used to read latencies[(n * 95) / 100], one past the
  // nearest-rank index ceil(0.95 n) - 1 — for n=100 that is the 96th value
  // instead of the 95th.
  std::vector<double> v100(100);
  for (std::size_t i = 0; i < v100.size(); ++i) {
    v100[i] = static_cast<double>(i + 1);  // 1..100
  }
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 1.00), 100.0);

  std::vector<double> v20(20);
  for (std::size_t i = 0; i < v20.size(); ++i) {
    v20[i] = static_cast<double>(i + 1);  // 1..20
  }
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v20, 0.95), 19.0);  // ceil(19)-1
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v20, 0.50), 10.0);  // ceil(10)-1

  const std::vector<double> tiny{42.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(tiny, 0.50), 42.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(tiny, 0.95), 42.0);

  const std::vector<double> pair{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(pair, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(pair, 0.95), 2.0);

  EXPECT_THROW(percentile_nearest_rank({}, 0.5), Error);
  EXPECT_THROW(percentile_nearest_rank(pair, 0.0), Error);
  EXPECT_THROW(percentile_nearest_rank(pair, 1.5), Error);
}

TEST(Queueing, ValidatesInputs) {
  EXPECT_THROW(simulate_stream({}, QueueingConfig{}, 10), Error);
  const auto traces = synthetic_traces(0.5);
  EXPECT_THROW(
      simulate_stream(traces, QueueingConfig{.arrival_rate_hz = 0.0}, 10),
      Error);
  EXPECT_THROW(simulate_stream(traces, QueueingConfig{}, 0), Error);
}

InferenceTrace trace_of(int exit_taken, double latency_s) {
  InferenceTrace t;
  t.exit_taken = exit_taken;
  t.latency_s = latency_s;
  t.dead = exit_taken < 0;
  return t;
}

TEST(Queueing, DeadTracesAreExcludedFromTheCloudServer) {
  // Regression: dead traces (exit_taken = -1, fault layer) used to be
  // treated as escalations — they occupied the server, advanced
  // cloud_free_at and polluted the percentiles. Half the stream is dead
  // here; if dead samples were serviced the 10 ms server would saturate at
  // this arrival rate.
  std::vector<InferenceTrace> traces{trace_of(-1, 0.0),
                                     trace_of(1, 10e-3)};
  QueueingConfig cfg{.arrival_rate_hz = 150.0, .cloud_service_s = 10e-3};
  const auto stats = simulate_stream(traces, cfg, 2000);
  EXPECT_EQ(stats.dead, 1000);
  EXPECT_EQ(stats.escalated, 1000);
  EXPECT_EQ(stats.samples, 2000);
  // Effective served load is 75 Hz * 10 ms = 0.75; with dead samples
  // serviced it would be ~1 and the tail would explode.
  EXPECT_LT(stats.cloud_utilization, 0.85);
  EXPECT_GT(stats.cloud_utilization, 0.6);
}

TEST(Queueing, AllDeadTracesYieldZeroedStats) {
  // Regression: with every latency sample excluded, the summary used to
  // divide by latencies.size() and call latencies.back() on an empty
  // vector — UB. An all-dead stream must produce zeroed stats instead.
  const std::vector<InferenceTrace> traces{trace_of(-1, 0.0)};
  QueueingConfig cfg{.arrival_rate_hz = 50.0, .cloud_service_s = 10e-3};
  const auto stats = simulate_stream(traces, cfg, 100);
  EXPECT_EQ(stats.samples, 100);
  EXPECT_EQ(stats.dead, 100);
  EXPECT_EQ(stats.escalated, 0);
  EXPECT_DOUBLE_EQ(stats.mean_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.p95_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.cloud_utilization, 0.0);
}

TEST(Queueing, ExponentialDrawStaysFiniteAtTheUniformBoundary) {
  // Regression: -log(1 - u) is +inf at u == 1, which would freeze the
  // arrival clock. The draw clamps u below 1, so every gap is finite.
  const double at_one = exponential_from_uniform(1.0, 50.0);
  EXPECT_TRUE(std::isfinite(at_one));
  EXPECT_GT(at_one, 0.0);
  EXPECT_DOUBLE_EQ(exponential_from_uniform(0.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_from_uniform(0.5, 1.0), -std::log(0.5));
  // Out-of-range draws clamp into [0, 1) instead of going NaN/negative.
  EXPECT_TRUE(std::isfinite(exponential_from_uniform(2.0, 50.0)));
  EXPECT_DOUBLE_EQ(exponential_from_uniform(-1.0, 50.0), 0.0);
  EXPECT_THROW(exponential_from_uniform(0.5, 0.0), Error);
}

TEST(Queueing, SingleTraceCyclesThroughTheStream) {
  const std::vector<InferenceTrace> traces{trace_of(1, 5e-3)};
  QueueingConfig cfg{.arrival_rate_hz = 10.0, .cloud_service_s = 1e-3};
  const auto stats = simulate_stream(traces, cfg, 250);
  EXPECT_EQ(stats.samples, 250);
  EXPECT_EQ(stats.escalated, 250);
  EXPECT_GE(stats.mean_latency_s, 6e-3);
}

TEST(Queueing, ZeroServiceTimeAddsNothingToNetworkLatency) {
  const std::vector<InferenceTrace> traces{trace_of(1, 7e-3)};
  QueueingConfig cfg{.arrival_rate_hz = 100.0, .cloud_service_s = 0.0};
  const auto stats = simulate_stream(traces, cfg, 500);
  // Latency is a difference of absolute event clocks, so allow float slack.
  EXPECT_NEAR(stats.mean_latency_s, 7e-3, 1e-9);
  EXPECT_NEAR(stats.max_latency_s, 7e-3, 1e-9);
  EXPECT_DOUBLE_EQ(stats.cloud_utilization, 0.0);
}

TEST(Queueing, OverloadUtilizationApproachesOne) {
  const auto traces = synthetic_traces(1.0);
  QueueingConfig cfg{.arrival_rate_hz = 10000.0, .cloud_service_s = 10e-3};
  const auto stats = simulate_stream(traces, cfg, 2000);
  EXPECT_GT(stats.cloud_utilization, 0.95);
  EXPECT_LE(stats.cloud_utilization, 1.0 + 1e-12);
}

// ------------------------------------------------------------ fleet network

TEST(FleetQueueing, ArrivalsConserveAcrossOutcomes) {
  // Every arrival ends exactly one way: completed, shed or dead.
  std::vector<InferenceTrace> traces{trace_of(0, 2e-3), trace_of(1, 8e-3),
                                     trace_of(2, 12e-3), trace_of(-1, 0.0)};
  FleetConfig cfg;
  cfg.num_devices = 50;
  cfg.num_edges = 4;
  cfg.queue_capacity = 4;
  cfg.arrival_rate_hz = 2000.0;  // deliberately heavy
  const auto stats = simulate_fleet(traces, cfg, 10000);
  EXPECT_EQ(stats.arrivals, 10000);
  EXPECT_EQ(stats.completed + stats.shed + stats.dead, stats.arrivals);
  EXPECT_EQ(stats.local + stats.escalated, stats.completed);
}

TEST(FleetQueueing, DeterministicAcrossRerunsIncludingSeries) {
  std::vector<InferenceTrace> traces{trace_of(0, 2e-3), trace_of(1, 8e-3),
                                     trace_of(2, 12e-3), trace_of(-1, 0.0)};
  FleetConfig cfg;
  cfg.num_devices = 30;
  cfg.num_edges = 3;
  cfg.policy = EdgePolicy::kLeastLoaded;
  cfg.seed = 11;
  obs::WindowedSeries a_series(0.5), b_series(0.5);
  const auto a = simulate_fleet(traces, cfg, 5000, &a_series);
  const auto b = simulate_fleet(traces, cfg, 5000, &b_series);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.dead, b.dead);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_DOUBLE_EQ(a.horizon_s, b.horizon_s);
  EXPECT_DOUBLE_EQ(a.throughput_hz, b.throughput_hz);
  for (std::size_t g = 0; g < a.edges.size(); ++g) {
    EXPECT_EQ(a.edges[g].served, b.edges[g].served) << g;
    EXPECT_DOUBLE_EQ(a.edges[g].utilization, b.edges[g].utilization) << g;
  }
  EXPECT_EQ(a.cloud.served, b.cloud.served);
  EXPECT_EQ(a_series.to_csv(), b_series.to_csv());
}

TEST(FleetQueueing, DeadTracesNeverOccupyAnyServer) {
  const std::vector<InferenceTrace> traces{trace_of(-1, 0.0)};
  FleetConfig cfg;
  const auto stats = simulate_fleet(traces, cfg, 1000);
  EXPECT_EQ(stats.dead, 1000);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.shed, 0);
  for (const auto& e : stats.edges) {
    EXPECT_EQ(e.served, 0);
    EXPECT_DOUBLE_EQ(e.utilization, 0.0);
  }
  EXPECT_EQ(stats.cloud.served, 0);
  EXPECT_DOUBLE_EQ(stats.cloud.utilization, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_s, 0.0);
}

TEST(FleetQueueing, LocalTrafficNeverTouchesTheStations) {
  const std::vector<InferenceTrace> traces{trace_of(0, 2e-3)};
  FleetConfig cfg;
  cfg.arrival_rate_hz = 5000.0;
  const auto stats = simulate_fleet(traces, cfg, 2000);
  EXPECT_EQ(stats.completed, 2000);
  EXPECT_EQ(stats.local, 2000);
  EXPECT_EQ(stats.escalated, 0);
  EXPECT_NEAR(stats.mean_latency_s, 2e-3, 1e-9);
  for (const auto& e : stats.edges) EXPECT_EQ(e.served, 0);
  EXPECT_EQ(stats.cloud.served, 0);
}

TEST(FleetQueueing, CloudTierOnlyServesFinalExits) {
  FleetConfig cfg;  // first_cloud_exit = 2
  cfg.arrival_rate_hz = 100.0;
  const auto edge_only =
      simulate_fleet({trace_of(1, 5e-3)}, cfg, 500);
  EXPECT_EQ(edge_only.cloud.served, 0);
  std::int64_t edge_served = 0;
  for (const auto& e : edge_only.edges) edge_served += e.served;
  EXPECT_EQ(edge_served, 500);
  EXPECT_EQ(edge_only.escalated, 500);

  const auto to_cloud = simulate_fleet({trace_of(2, 5e-3)}, cfg, 500);
  EXPECT_EQ(to_cloud.cloud.served, 500);
  // The cloud leg adds the hop plus its service time on top.
  EXPECT_GT(to_cloud.mean_latency_s,
            edge_only.mean_latency_s + cfg.edge_cloud_latency_s);
}

TEST(FleetQueueing, SaturationShedsInsteadOfCrashing) {
  const std::vector<InferenceTrace> traces{trace_of(1, 1e-3)};
  FleetConfig cfg;
  cfg.num_edges = 2;
  cfg.edge_servers = 1;
  cfg.edge_service_s = 10e-3;
  cfg.max_batch = 1;  // no amortization: capacity 2 * 100 Hz
  cfg.queue_capacity = 8;
  cfg.arrival_rate_hz = 2000.0;
  const auto stats = simulate_fleet(traces, cfg, 5000);
  EXPECT_GT(stats.shed, 0);
  EXPECT_EQ(stats.completed + stats.shed, stats.arrivals);
  for (const auto& e : stats.edges) {
    EXPECT_GT(e.utilization, 0.9);
    EXPECT_LE(e.utilization, 1.0 + 1e-12);
    EXPECT_LE(e.peak_queue, cfg.queue_capacity);
  }
}

TEST(FleetQueueing, BatchingAmortizesEdgeServiceUnderLoad) {
  const std::vector<InferenceTrace> traces{trace_of(1, 1e-3)};
  FleetConfig cfg;
  cfg.num_edges = 1;
  cfg.edge_servers = 1;
  cfg.edge_service_s = 5e-3;     // unbatched capacity: 200 Hz
  cfg.arrival_rate_hz = 400.0;   // 2x overload without batching
  cfg.queue_capacity = 100000;
  cfg.batch_growth = 0.25;
  FleetConfig unbatched = cfg;
  unbatched.max_batch = 1;
  FleetConfig batched = cfg;
  batched.max_batch = 8;  // amortized capacity: 8 / (5ms * 2.75) = 582 Hz
  const auto a = simulate_fleet(traces, unbatched, 4000);
  const auto b = simulate_fleet(traces, batched, 4000);
  EXPECT_LT(b.p95_latency_s, a.p95_latency_s / 2.0);
  EXPECT_LT(b.edges[0].utilization, a.edges[0].utilization);
  EXPECT_GT(b.edges[0].served, b.edges[0].batches);  // real batches formed
}

TEST(FleetQueueing, PoliciesRouteEveryEscalationDeterministically) {
  const std::vector<InferenceTrace> traces{trace_of(1, 2e-3)};
  for (const auto policy : {EdgePolicy::kNearest, EdgePolicy::kLeastLoaded,
                            EdgePolicy::kRoundRobin}) {
    FleetConfig cfg;
    cfg.policy = policy;
    cfg.num_edges = 4;
    cfg.arrival_rate_hz = 500.0;
    const auto stats = simulate_fleet(traces, cfg, 4000);
    std::int64_t served = 0;
    for (const auto& e : stats.edges) served += e.served;
    EXPECT_EQ(served, 4000) << to_string(policy);
    // Uniform devices: nearest hashes devices evenly across edges, and
    // round-robin is exactly fair. Least-loaded intentionally piles onto
    // the lowest-index edge while queues are empty (ties break to index
    // 0), so it only has to route everything, not balance.
    if (policy != EdgePolicy::kLeastLoaded) {
      for (const auto& e : stats.edges) {
        EXPECT_GT(e.served, 700) << to_string(policy);
        EXPECT_LT(e.served, 1300) << to_string(policy);
      }
    }
    if (policy == EdgePolicy::kRoundRobin) {
      for (const auto& e : stats.edges) EXPECT_EQ(e.served, 1000);
    }
  }
}

TEST(FleetQueueing, TraceDrivenArrivalsReplayFixedGaps) {
  const std::vector<InferenceTrace> traces{trace_of(0, 2e-3)};
  FleetConfig cfg;
  cfg.interarrival_s = {10e-3};  // one arrival every 10 ms, exactly
  const auto stats = simulate_fleet(traces, cfg, 100);
  EXPECT_EQ(stats.arrivals, 100);
  // Last arrival at 1.0 s, completing 2 ms later.
  EXPECT_NEAR(stats.horizon_s, 1.002, 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_latency_s, 2e-3);
}

TEST(FleetQueueing, ParsesAndPrintsPolicies) {
  EXPECT_EQ(parse_edge_policy("nearest"), EdgePolicy::kNearest);
  EXPECT_EQ(parse_edge_policy("least-loaded"), EdgePolicy::kLeastLoaded);
  EXPECT_EQ(parse_edge_policy("round-robin"), EdgePolicy::kRoundRobin);
  EXPECT_THROW(parse_edge_policy("random"), Error);
  EXPECT_EQ(to_string(EdgePolicy::kNearest), "nearest");
  EXPECT_EQ(to_string(EdgePolicy::kLeastLoaded), "least-loaded");
  EXPECT_EQ(to_string(EdgePolicy::kRoundRobin), "round-robin");
}

TEST(FleetQueueing, ValidatesConfiguration) {
  const std::vector<InferenceTrace> traces{trace_of(1, 2e-3)};
  EXPECT_THROW(simulate_fleet({}, FleetConfig{}, 10), Error);
  EXPECT_THROW(simulate_fleet(traces, FleetConfig{}, 0), Error);
  FleetConfig bad;
  bad.num_edges = 0;
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  bad = FleetConfig{};
  bad.num_devices = 0;
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  bad = FleetConfig{};
  bad.queue_capacity = 0;
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  bad = FleetConfig{};
  bad.batch_growth = -0.5;
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  bad = FleetConfig{};
  bad.interarrival_s = {1e-3, -1.0};
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  bad = FleetConfig{};
  bad.arrival_rate_hz = 0.0;
  EXPECT_THROW(simulate_fleet(traces, bad, 10), Error);
  // The series must be freshly constructed: the simulator registers its
  // own fleet.* columns.
  obs::WindowedSeries dirty(1.0);
  dirty.add_counter("other");
  EXPECT_THROW(simulate_fleet(traces, FleetConfig{}, 10, &dirty), Error);
}

TEST_F(RuntimeFixture, RuntimeValidatesConstruction) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  EXPECT_THROW(HierarchyRuntime(model, {0.5, 0.5}, devices), Error);
  EXPECT_THROW(HierarchyRuntime(model, {0.5}, {0, 1}), Error);
}

TEST_F(RuntimeFixture, LinkReportAccountsEveryByte) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  runtime.run(dataset->test());
  const Table report = runtime.link_report();
  EXPECT_EQ(report.row_count(), 12u);  // 6 gateway + 6 uplink links
  // Sum of per-link bytes in the report equals the metrics total.
  std::int64_t sum = 0;
  for (const auto& link : runtime.device_gateway_links()) {
    sum += link.stats().bytes;
  }
  for (const auto& link : runtime.device_uplink_links()) {
    sum += link.stats().bytes;
  }
  EXPECT_EQ(sum, runtime.metrics().total_bytes);
  EXPECT_NE(report.to_string().find("device0->gateway"), std::string::npos);
}

TEST_F(RuntimeFixture, RejectsFloatDeviceModels) {
  auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  cfg.float_devices = true;
  core::DdnnModel model(cfg);
  // Float device features have no 1-bit wire representation.
  EXPECT_THROW(HierarchyRuntime(model, {0.5}, devices), Error);
}

}  // namespace
}  // namespace ddnn::dist
