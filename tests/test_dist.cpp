#include <gtest/gtest.h>

#include "autograd/grad_mode.hpp"
#include "core/inference.hpp"
#include "dist/link.hpp"
#include "dist/message.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

// ----------------------------------------------------------------- messages

TEST(Message, ClassScoresRoundTripIsExact) {
  const Tensor scores =
      Tensor::from_vector(Shape{1, 3}, {-1.25f, 3.5f, 0.0078125f});
  const Message msg = encode_class_scores(scores);
  EXPECT_EQ(msg.payload_bytes(), 12);  // 4 bytes * |C|, Eq. 1 first term
  const Tensor back = decode_class_scores(msg, 3);
  EXPECT_TRUE(back.allclose(scores, 0.0f));
}

TEST(Message, BinaryFeatureMapRoundTripIsExact) {
  Rng rng(3);
  const Tensor feats =
      ops::sign(Tensor::randn(Shape{1, 4, 16, 16}, rng));
  const Message msg = encode_binary_feature_map(feats);
  EXPECT_EQ(msg.payload_bytes(), 128);  // f*o/8 = 4*256/8, Eq. 1 second term
  const Tensor back = decode_binary_feature_map(msg, feats.shape());
  EXPECT_TRUE(back.allclose(feats, 0.0f));
}

TEST(Message, BinaryEncoderRejectsNonBinaryInput) {
  const Tensor not_binary = Tensor::from_vector(Shape{2}, {1.0f, 0.5f});
  EXPECT_THROW(encode_binary_feature_map(not_binary), Error);
}

TEST(Message, RawImageQuantizesTo1BytePerValue) {
  Rng rng(5);
  const Tensor img = Tensor::rand_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  const Message msg = encode_raw_image(img);
  EXPECT_EQ(msg.payload_bytes(), 3072);  // the paper's raw-offload cost
  const Tensor back = decode_raw_image(msg, img.shape());
  EXPECT_TRUE(back.allclose(img, 1.0f / 255.0f + 1e-6f));
}

TEST(Message, DecodersValidateKindAndSize) {
  const Message scores = encode_class_scores(Tensor::zeros(Shape{1, 3}));
  EXPECT_THROW(decode_binary_feature_map(scores, Shape{96}), Error);
  EXPECT_THROW(decode_class_scores(scores, 4), Error);
}

TEST(Message, RandomPayloadsNeverCrashDecoders) {
  // Fuzz: arbitrary byte payloads must either decode into a well-formed
  // tensor or throw ddnn::Error — never crash or produce the wrong size.
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Message msg;
    msg.kind = static_cast<MessageKind>(rng.uniform_index(3));
    msg.payload.resize(rng.uniform_index(64));
    for (auto& b : msg.payload) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    try {
      const Tensor t = decode_binary_feature_map(msg, Shape{32});
      EXPECT_EQ(t.numel(), 32);
      for (std::int64_t i = 0; i < 32; ++i) {
        EXPECT_TRUE(t[i] == 1.0f || t[i] == -1.0f);
      }
    } catch (const Error&) {
      // rejected: fine
    }
    try {
      const Tensor t = decode_class_scores(msg, 3);
      EXPECT_EQ(t.numel(), 3);
    } catch (const Error&) {
    }
    try {
      const Tensor t = decode_raw_image(msg, Shape{3, 2, 2});
      EXPECT_EQ(t.numel(), 12);
      for (std::int64_t i = 0; i < 12; ++i) {
        EXPECT_GE(t[i], 0.0f);
        EXPECT_LE(t[i], 1.0f);
      }
    } catch (const Error&) {
    }
  }
}

// -------------------------------------------------------------------- links

TEST(Link, AccountsBytesAndMessages) {
  Link link("test");
  link.transmit(encode_class_scores(Tensor::zeros(Shape{1, 3})));
  link.transmit(encode_class_scores(Tensor::zeros(Shape{1, 3})));
  EXPECT_EQ(link.stats().messages, 2);
  EXPECT_EQ(link.stats().bytes, 24);
  link.reset_stats();
  EXPECT_EQ(link.stats().bytes, 0);
}

TEST(Link, LatencyIsAffineInBytes) {
  Link link("test", {.bandwidth_bytes_per_s = 1000.0, .base_latency_s = 0.01});
  EXPECT_DOUBLE_EQ(link.latency_for(0), 0.01);
  EXPECT_DOUBLE_EQ(link.latency_for(500), 0.01 + 0.5);
  EXPECT_THROW(Link("bad", {.bandwidth_bytes_per_s = 0.0}), Error);
}

// ------------------------------------------------------------------ runtime

struct RuntimeFixture : public ::testing::Test {
  RuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(RuntimeFixture, DistributedMatchesCentralizedPredictions) {
  // The key systems invariant: running the partitioned model over the
  // simulated hierarchy (with bit-packed feature transport) must reproduce
  // the centralized forward pass exactly, for every sample and threshold.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  const double threshold = 0.5;

  const auto eval =
      core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, {threshold});

  HierarchyRuntime runtime(model, {threshold}, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
    EXPECT_NEAR(trace.entropy, central.decisions[i].entropy, 1e-9) << i;
  }
}

TEST_F(RuntimeFixture, MeasuredBytesMatchEq1Exactly) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.6}, devices);
  const auto metrics = runtime.run(dataset->test());

  const double local_fraction =
      static_cast<double>(metrics.exit_counts[0]) /
      static_cast<double>(metrics.samples);
  const double analytic =
      core::ddnn_comm_bytes(local_fraction, model.config().comm_params());
  for (int d = 0; d < 6; ++d) {
    EXPECT_NEAR(metrics.device_bytes_per_sample(d), analytic, 1e-9) << d;
  }
}

TEST_F(RuntimeFixture, ThresholdOneNeverTouchesTheUplink) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {1.0}, devices);
  runtime.run(dataset->test());
  for (const auto& link : runtime.device_uplink_links()) {
    EXPECT_EQ(link.stats().bytes, 0);
  }
  EXPECT_EQ(runtime.metrics().exit_counts[0],
            static_cast<std::int64_t>(dataset->test().size()));
}

TEST_F(RuntimeFixture, ThresholdZeroAlwaysOffloads) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.0}, devices);
  runtime.run(dataset->test());
  // Every sample pays both the score vector and the feature map.
  const auto n = static_cast<std::int64_t>(dataset->test().size());
  for (const auto& link : runtime.device_uplink_links()) {
    EXPECT_EQ(link.stats().bytes, n * 128);
  }
  for (const auto& link : runtime.device_gateway_links()) {
    EXPECT_EQ(link.stats().bytes, n * 12);
  }
}

TEST_F(RuntimeFixture, FailedDeviceSendsNothingAndSystemStillWorks) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  runtime.set_device_failed(2, true);
  const auto metrics = runtime.run(dataset->test());
  EXPECT_EQ(metrics.device_bytes[2], 0);
  EXPECT_EQ(metrics.samples,
            static_cast<std::int64_t>(dataset->test().size()));
  // Failure path must match the centralized masked forward.
  std::vector<bool> active(6, true);
  active[2] = false;
  const auto eval =
      core::evaluate_exits(model, dataset->test(), devices, active);
  const auto central = core::apply_policy(eval, {0.5});
  EXPECT_DOUBLE_EQ(metrics.accuracy(), central.overall_accuracy);
}

TEST_F(RuntimeFixture, AllDevicesFailedDegradesToDeadTraces) {
  // Regression: this used to hard-abort via DDNN_CHECK mid-run. A sample no
  // tier can classify must be counted as a flagged dead trace instead.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  for (int d = 0; d < 6; ++d) runtime.set_device_failed(d, true);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_TRUE(trace.dead);
  EXPECT_TRUE(trace.degraded);
  EXPECT_EQ(trace.exit_taken, -1);
  EXPECT_EQ(trace.prediction, -1);
  EXPECT_DOUBLE_EQ(trace.entropy, 1.0);
  EXPECT_EQ(runtime.metrics().samples, 1);
  EXPECT_EQ(runtime.metrics().reliability.dead_samples, 1);
  EXPECT_EQ(runtime.metrics().correct, 0);

  // A revived device must sense afresh (its cache was cleared on failure)
  // and the system classifies normally again.
  runtime.set_device_failed(0, false);
  const auto healthy = runtime.classify(dataset->test()[0]);
  EXPECT_FALSE(healthy.dead);
  EXPECT_GE(healthy.exit_taken, 0);
  EXPECT_GE(healthy.prediction, 0);
}

TEST_F(RuntimeFixture, LatencyGrowsWhenSamplesEscalate) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime always_local(model, {1.0}, devices);
  HierarchyRuntime always_cloud(model, {0.0}, devices);
  always_local.run(dataset->test());
  always_cloud.run(dataset->test());
  EXPECT_LT(always_local.metrics().mean_latency_s(),
            always_cloud.metrics().mean_latency_s());
}

TEST_F(RuntimeFixture, EdgeConfigRunsThreeTiers) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  // Local never confident, edge always confident: everything exits at edge.
  HierarchyRuntime runtime(model, {0.0, 1.0}, devices);
  const auto metrics = runtime.run(dataset->test());
  EXPECT_EQ(metrics.exit_counts[0], 0);
  EXPECT_EQ(metrics.exit_counts[1],
            static_cast<std::int64_t>(dataset->test().size()));
  for (const auto& link : runtime.edge_cloud_links()) {
    EXPECT_EQ(link.stats().bytes, 0);  // cloud never reached
  }
}

TEST_F(RuntimeFixture, EdgeConfigMatchesCentralized) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  const std::vector<double> thresholds{0.4, 0.6};
  const auto eval = core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, thresholds);
  HierarchyRuntime runtime(model, thresholds, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
  }
}

TEST_F(RuntimeFixture, TwoEdgeGroupsMatchCentralized) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgesCloud));
  model.set_training(false);
  const std::vector<double> thresholds{0.4, 0.6};
  const auto eval = core::evaluate_exits(model, dataset->test(), devices);
  const auto central = core::apply_policy(eval, thresholds);
  HierarchyRuntime runtime(model, thresholds, devices);
  for (std::size_t i = 0; i < dataset->test().size(); ++i) {
    const auto trace = runtime.classify(dataset->test()[i]);
    EXPECT_EQ(trace.prediction, central.decisions[i].prediction) << i;
    EXPECT_EQ(trace.exit_taken, central.decisions[i].exit_taken) << i;
  }
}

// ----------------------------------------------------------------- queueing

std::vector<InferenceTrace> synthetic_traces(double escalate_fraction) {
  std::vector<InferenceTrace> traces;
  for (int i = 0; i < 100; ++i) {
    InferenceTrace t;
    const bool escalate =
        static_cast<double>(i) < 100.0 * escalate_fraction;
    t.exit_taken = escalate ? 1 : 0;
    t.latency_s = escalate ? 10e-3 : 2e-3;
    traces.push_back(t);
  }
  return traces;
}

TEST(Queueing, AllLocalTrafficIsLoadInsensitive) {
  const auto traces = synthetic_traces(0.0);
  QueueingConfig low{.arrival_rate_hz = 1.0, .cloud_service_s = 10e-3};
  QueueingConfig high{.arrival_rate_hz = 500.0, .cloud_service_s = 10e-3};
  const auto a = simulate_stream(traces, low, 1000);
  const auto b = simulate_stream(traces, high, 1000);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.escalated, 0);
  EXPECT_DOUBLE_EQ(a.cloud_utilization, 0.0);
}

TEST(Queueing, LightLoadAddsNoWaiting) {
  // At arrival rates far below 1/service, an escalated sample's latency is
  // just network + service.
  const auto traces = synthetic_traces(1.0);
  QueueingConfig cfg{.arrival_rate_hz = 0.5, .cloud_service_s = 10e-3};
  const auto stats = simulate_stream(traces, cfg, 500);
  EXPECT_NEAR(stats.mean_latency_s, 10e-3 + 10e-3, 1e-3);
  EXPECT_EQ(stats.escalated, 500);
}

TEST(Queueing, SaturationInflatesTailLatency) {
  const auto traces = synthetic_traces(1.0);
  QueueingConfig light{.arrival_rate_hz = 20.0, .cloud_service_s = 10e-3};
  QueueingConfig heavy{.arrival_rate_hz = 99.0, .cloud_service_s = 10e-3};
  const auto a = simulate_stream(traces, light, 2000);
  const auto b = simulate_stream(traces, heavy, 2000);
  EXPECT_GT(b.p95_latency_s, 2.0 * a.p95_latency_s);
  EXPECT_GT(b.cloud_utilization, a.cloud_utilization);
  EXPECT_LT(a.cloud_utilization, 0.5);
  EXPECT_GT(b.cloud_utilization, 0.8);
}

TEST(Queueing, LocalExitsShieldTheQueue) {
  // Same load: the mostly-local policy keeps p95 far below all-offload.
  QueueingConfig cfg{.arrival_rate_hz = 95.0, .cloud_service_s = 10e-3};
  const auto offload = simulate_stream(synthetic_traces(1.0), cfg, 2000);
  const auto mostly_local = simulate_stream(synthetic_traces(0.2), cfg, 2000);
  EXPECT_LT(mostly_local.p95_latency_s, offload.p95_latency_s / 2.0);
}

TEST(Queueing, DeterministicForSeed) {
  const auto traces = synthetic_traces(0.5);
  QueueingConfig cfg{.arrival_rate_hz = 50.0, .cloud_service_s = 10e-3,
                     .seed = 9};
  const auto a = simulate_stream(traces, cfg, 500);
  const auto b = simulate_stream(traces, cfg, 500);
  EXPECT_DOUBLE_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(Queueing, NearestRankPercentilePinsExactIndices) {
  // Regression: p95 used to read latencies[(n * 95) / 100], one past the
  // nearest-rank index ceil(0.95 n) - 1 — for n=100 that is the 96th value
  // instead of the 95th.
  std::vector<double> v100(100);
  for (std::size_t i = 0; i < v100.size(); ++i) {
    v100[i] = static_cast<double>(i + 1);  // 1..100
  }
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v100, 1.00), 100.0);

  std::vector<double> v20(20);
  for (std::size_t i = 0; i < v20.size(); ++i) {
    v20[i] = static_cast<double>(i + 1);  // 1..20
  }
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v20, 0.95), 19.0);  // ceil(19)-1
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v20, 0.50), 10.0);  // ceil(10)-1

  const std::vector<double> tiny{42.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(tiny, 0.50), 42.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(tiny, 0.95), 42.0);

  const std::vector<double> pair{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(pair, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(pair, 0.95), 2.0);

  EXPECT_THROW(percentile_nearest_rank({}, 0.5), Error);
  EXPECT_THROW(percentile_nearest_rank(pair, 0.0), Error);
  EXPECT_THROW(percentile_nearest_rank(pair, 1.5), Error);
}

TEST(Queueing, ValidatesInputs) {
  EXPECT_THROW(simulate_stream({}, QueueingConfig{}, 10), Error);
  const auto traces = synthetic_traces(0.5);
  EXPECT_THROW(
      simulate_stream(traces, QueueingConfig{.arrival_rate_hz = 0.0}, 10),
      Error);
  EXPECT_THROW(simulate_stream(traces, QueueingConfig{}, 0), Error);
}

TEST_F(RuntimeFixture, RuntimeValidatesConstruction) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  EXPECT_THROW(HierarchyRuntime(model, {0.5, 0.5}, devices), Error);
  EXPECT_THROW(HierarchyRuntime(model, {0.5}, {0, 1}), Error);
}

TEST_F(RuntimeFixture, LinkReportAccountsEveryByte) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  runtime.run(dataset->test());
  const Table report = runtime.link_report();
  EXPECT_EQ(report.row_count(), 12u);  // 6 gateway + 6 uplink links
  // Sum of per-link bytes in the report equals the metrics total.
  std::int64_t sum = 0;
  for (const auto& link : runtime.device_gateway_links()) {
    sum += link.stats().bytes;
  }
  for (const auto& link : runtime.device_uplink_links()) {
    sum += link.stats().bytes;
  }
  EXPECT_EQ(sum, runtime.metrics().total_bytes);
  EXPECT_NE(report.to_string().find("device0->gateway"), std::string::npos);
}

TEST_F(RuntimeFixture, RejectsFloatDeviceModels) {
  auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  cfg.float_devices = true;
  core::DdnnModel model(cfg);
  // Float device features have no 1-bit wire representation.
  EXPECT_THROW(HierarchyRuntime(model, {0.5}, devices), Error);
}

}  // namespace
}  // namespace ddnn::dist
