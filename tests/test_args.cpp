#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"

namespace ddnn {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args};
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser p("prog", "test");
  p.add_option("epochs", "epochs", "40").add_flag("verbose", "verbosity");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("epochs"), 40);
  EXPECT_FALSE(p.has_flag("verbose"));
}

TEST(ArgParser, SpaceAndEqualsForms) {
  ArgParser p("prog", "test");
  p.add_option("epochs", "", "1").add_option("lr", "", "0.1");
  const auto argv = argv_of({"prog", "--epochs", "7", "--lr=0.5"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("epochs"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("lr"), 0.5);
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser p("prog", "test");
  p.add_flag("verbose", "");
  const auto argv = argv_of({"prog", "input.bin", "--verbose", "more"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(p.has_flag("verbose"));
  ASSERT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positionals()[0], "input.bin");
  EXPECT_EQ(p.positionals()[1], "more");
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p("prog", "test");
  p.add_option("x", "", "1");
  const auto argv = argv_of({"prog", "--help"});
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser p("prog", "test");
  p.add_option("epochs", "", "1").add_flag("verbose", "");
  {
    const auto argv = argv_of({"prog", "--nope"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
  }
  {
    ArgParser q("prog", "test");
    q.add_option("epochs", "", "1");
    const auto argv = argv_of({"prog", "--epochs"});
    EXPECT_THROW(q.parse(static_cast<int>(argv.size()), argv.data()), Error);
  }
  {
    ArgParser q("prog", "test");
    q.add_flag("verbose", "");
    const auto argv = argv_of({"prog", "--verbose=yes"});
    EXPECT_THROW(q.parse(static_cast<int>(argv.size()), argv.data()), Error);
  }
}

TEST(ArgParser, TypedGettersValidate) {
  ArgParser p("prog", "test");
  p.add_option("epochs", "", "x");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(p.get_int("epochs"), Error);
  EXPECT_THROW(p.get("missing"), Error);
  EXPECT_THROW(p.has_flag("epochs"), Error);  // option, not a flag
}

TEST(ArgParser, RangeValidatedGettersRejectOutOfRangeNamingTheFlag) {
  ArgParser p("prog", "test");
  p.add_option("mem-budget", "", "0")
      .add_option("fleet-devices", "", "0")
      .add_option("fleet-edges", "", "4")
      .add_option("fleet-arrival-hz", "", "200")
      .add_option("fleet-batch-growth", "", "0.25");
  const auto argv = argv_of({"prog", "--mem-budget", "-5", "--fleet-edges",
                             "0", "--fleet-arrival-hz=0",
                             "--fleet-batch-growth=-0.1"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));

  // In-range values pass through.
  EXPECT_EQ(p.get_int_at_least("fleet-devices", 0), 0);

  // Out-of-range values fail loudly, naming the offending flag.
  try {
    p.get_int_at_least("mem-budget", 0);
    FAIL() << "negative --mem-budget must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--mem-budget"), std::string::npos);
  }
  EXPECT_THROW(p.get_int_at_least("fleet-edges", 1), Error);
  EXPECT_THROW(p.get_double_greater_than("fleet-arrival-hz", 0.0), Error);
  EXPECT_THROW(p.get_double_at_least("fleet-batch-growth", 0.0), Error);
}

TEST(ArgParser, RangeValidatedGettersStillRejectNonNumericInput) {
  ArgParser p("prog", "test");
  p.add_option("mem-budget", "", "0").add_option("fleet-arrival-hz", "", "1");
  const auto argv =
      argv_of({"prog", "--mem-budget=lots", "--fleet-arrival-hz=fast"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(p.get_int_at_least("mem-budget", 0), Error);
  EXPECT_THROW(p.get_double_greater_than("fleet-arrival-hz", 0.0), Error);
}

TEST(ArgParser, UsageListsOptionsAndDefaults) {
  ArgParser p("prog", "The test tool.");
  p.add_option("epochs", "training epochs", "40").add_flag("verbose", "talk");
  const std::string u = p.usage();
  EXPECT_NE(u.find("--epochs"), std::string::npos);
  EXPECT_NE(u.find("(default: 40)"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("The test tool."), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("prog", "test");
  p.add_option("x", "", "1");
  EXPECT_THROW(p.add_flag("x", ""), Error);
}

TEST(ParseIntList, SplitsAndValidates) {
  EXPECT_EQ(parse_int_list("1,2,3"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(parse_int_list(""), (std::vector<int>{}));
  EXPECT_EQ(parse_int_list("7"), (std::vector<int>{7}));
  EXPECT_EQ(parse_int_list("-1,0"), (std::vector<int>{-1, 0}));
  EXPECT_THROW(parse_int_list("1,x"), Error);
}

}  // namespace
}  // namespace ddnn
