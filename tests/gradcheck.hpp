// Numerical gradient checking for autograd ops.
//
// Compares the analytic gradient of a scalar-valued computation against
// central finite differences, perturbing every element of every leaf. Only
// valid for genuinely differentiable ops — straight-through estimators
// (binarize) and tie-breaking ops (max pooling at exact ties) are tested
// for their *defined* semantics instead.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "autograd/variable.hpp"

namespace ddnn::testing {

/// `build` must recompute the scalar loss from the CURRENT values of
/// `leaves` on every call (the tape is rebuilt each time).
inline void expect_gradients_match(
    const std::function<autograd::Variable()>& build,
    std::vector<autograd::Variable> leaves, float eps = 1e-3f,
    float tol = 2e-2f) {
  // Analytic gradients.
  for (auto& leaf : leaves) leaf.zero_grad();
  autograd::Variable loss = build();
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) analytic.push_back(leaf.grad().clone());

  // Numerical gradients by central differences.
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    Tensor& x = leaves[l].value();
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const float saved = x[i];
      x[i] = saved + eps;
      const float up = build().value()[0];
      x[i] = saved - eps;
      const float down = build().value()[0];
      x[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      // Absolute tolerance for small gradients, relative for large ones
      // (float32 central differences lose precision as magnitudes grow).
      const float bound = std::max(tol, 0.02f * std::fabs(numeric));
      EXPECT_NEAR(analytic[l][i], numeric, bound)
          << "leaf " << l << " element " << i;
    }
  }
}

}  // namespace ddnn::testing
