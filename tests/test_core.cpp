#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/aggregator.hpp"
#include "core/comm_cost.hpp"
#include "core/config.hpp"
#include "core/entropy.hpp"
#include "core/inference.hpp"
#include "util/error.hpp"

namespace ddnn::core {
namespace {

using autograd::Variable;

// ------------------------------------------------------------------ entropy

TEST(Entropy, OneHotIsZero) {
  const std::vector<float> p{1.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(normalized_entropy(p), 0.0);
}

TEST(Entropy, UniformIsOne) {
  for (int c : {2, 3, 10}) {
    std::vector<float> p(static_cast<std::size_t>(c), 1.0f / c);
    EXPECT_NEAR(normalized_entropy(p), 1.0, 1e-6) << c;
  }
}

TEST(Entropy, MonotoneInUncertainty) {
  // Mixtures between one-hot and uniform: entropy grows with the mix.
  double prev = -1.0;
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.1) {
    std::vector<float> p(3);
    for (int i = 0; i < 3; ++i) {
      p[static_cast<std::size_t>(i)] = static_cast<float>(
          alpha / 3.0 + (1.0 - alpha) * (i == 0 ? 1.0 : 0.0));
    }
    const double h = normalized_entropy(p);
    EXPECT_GT(h, prev - 1e-12);
    prev = h;
  }
}

TEST(Entropy, InvariantUnderPermutation) {
  const std::vector<float> a{0.7f, 0.2f, 0.1f};
  const std::vector<float> b{0.1f, 0.7f, 0.2f};
  EXPECT_NEAR(normalized_entropy(a), normalized_entropy(b), 1e-9);
}

TEST(Entropy, RowAccessor) {
  Tensor probs = Tensor::from_vector(Shape{2, 3},
                                     {1, 0, 0, 1.0f / 3, 1.0f / 3, 1.0f / 3});
  EXPECT_NEAR(normalized_entropy_row(probs, 0), 0.0, 1e-9);
  EXPECT_NEAR(normalized_entropy_row(probs, 1), 1.0, 1e-6);
}

TEST(Entropy, RejectsDegenerateInput) {
  EXPECT_THROW(normalized_entropy(std::vector<float>{1.0f}), Error);
  EXPECT_THROW(normalized_entropy(std::vector<float>{-0.5f, 1.5f}), Error);
}

TEST(Entropy, ExitDecisionBoundary) {
  EXPECT_TRUE(should_exit(0.5, 0.5));   // eta <= T exits
  EXPECT_FALSE(should_exit(0.51, 0.5));
  EXPECT_TRUE(should_exit(0.0, 0.0));
}

TEST(Criterion, ScoresAndRanges) {
  const std::vector<float> one_hot{1.0f, 0.0f, 0.0f};
  const std::vector<float> uniform{1.0f / 3, 1.0f / 3, 1.0f / 3};
  using C = ConfidenceCriterion;
  EXPECT_DOUBLE_EQ(confidence_score(one_hot, C::kNormalizedEntropy), 0.0);
  EXPECT_DOUBLE_EQ(confidence_score(one_hot, C::kUnnormalizedEntropy), 0.0);
  EXPECT_DOUBLE_EQ(confidence_score(one_hot, C::kMaxProbability), 0.0);
  EXPECT_NEAR(confidence_score(uniform, C::kNormalizedEntropy), 1.0, 1e-6);
  EXPECT_NEAR(confidence_score(uniform, C::kUnnormalizedEntropy),
              std::log(3.0), 1e-6);
  EXPECT_NEAR(confidence_score(uniform, C::kMaxProbability), 2.0 / 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(max_confidence_score(3, C::kNormalizedEntropy), 1.0);
  EXPECT_DOUBLE_EQ(max_confidence_score(3, C::kUnnormalizedEntropy),
                   std::log(3.0));
  EXPECT_DOUBLE_EQ(max_confidence_score(3, C::kMaxProbability), 2.0 / 3.0);
}

TEST(Criterion, UnnormalizedEntropyIsExactlyRawEntropy) {
  // Regression: the unnormalized score used to be derived as
  // normalized_entropy(probs) * log C, which round-trips the raw entropy
  // through a divide/multiply and the [0, 1] clamp — distorting values near
  // the boundaries. It must equal the directly computed entropy bit-for-bit.
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> p(3);
    float sum = 0.0f;
    for (auto& v : p) {
      v = static_cast<float>(rng.uniform(0.01, 1.0));
      sum += v;
    }
    for (auto& v : p) v /= sum;

    double h = 0.0;
    for (const float v : p) {
      if (v > 0.0f) {
        h -= static_cast<double>(v) * std::log(static_cast<double>(v));
      }
    }
    const double expected = std::clamp(h, 0.0, std::log(3.0));
    EXPECT_EQ(confidence_score(p, ConfidenceCriterion::kUnnormalizedEntropy),
              expected)
        << "trial " << trial;
    EXPECT_EQ(unnormalized_entropy(p), expected) << "trial " << trial;
  }
}

TEST(Criterion, UnnormalizedEntropyClampsToItsOwnRange) {
  // Slightly super-uniform "probabilities" (sum > 1) push raw entropy past
  // log C; the score clamps to exactly log C, never beyond.
  const std::vector<float> over{0.34f, 0.34f, 0.34f};
  EXPECT_EQ(confidence_score(over, ConfidenceCriterion::kUnnormalizedEntropy),
            std::log(3.0));
  const std::vector<float> one_hot{1.0f, 0.0f, 0.0f};
  EXPECT_EQ(
      confidence_score(one_hot, ConfidenceCriterion::kUnnormalizedEntropy),
      0.0);
}

TEST(Criterion, NamesAreDistinct) {
  using C = ConfidenceCriterion;
  EXPECT_NE(to_string(C::kNormalizedEntropy),
            to_string(C::kUnnormalizedEntropy));
  EXPECT_NE(to_string(C::kNormalizedEntropy), to_string(C::kMaxProbability));
}


// ---------------------------------------------------------------- comm cost

TEST(CommCost, MatchesPaperTableIIAnchors) {
  // Paper Table II with |C|=3, f=4, o=256: T=1 (l=100%) -> 12 B;
  // T=0.1 (l=0%) -> 140 B; l=60.82% -> ~62 B.
  const CommParams p{.num_classes = 3, .filters = 4, .filter_output_bits = 256};
  EXPECT_DOUBLE_EQ(ddnn_comm_bytes(1.0, p), 12.0);
  EXPECT_DOUBLE_EQ(ddnn_comm_bytes(0.0, p), 140.0);
  EXPECT_NEAR(ddnn_comm_bytes(0.6082, p), 62.0, 0.2);
}

TEST(CommCost, MonotoneDecreasingInLocalExitFraction) {
  const CommParams p{};
  double prev = 1e18;
  for (double l = 0.0; l <= 1.0; l += 0.25) {
    const double c = ddnn_comm_bytes(l, p);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(CommCost, RawOffloadIs3072BytesForPaperInput) {
  EXPECT_EQ(raw_offload_bytes(3, 32, 32), 3072);
}

TEST(CommCost, TwentyTimesReductionHolds) {
  // Section IV-H: worst-case DDNN (140 B) is >20x below raw offload.
  const CommParams p{.num_classes = 3, .filters = 4, .filter_output_bits = 256};
  EXPECT_GT(static_cast<double>(raw_offload_bytes(3, 32, 32)) /
                ddnn_comm_bytes(0.0, p),
            20.0);
}

TEST(CommCost, ValidatesInputs) {
  EXPECT_THROW(ddnn_comm_bytes(-0.1, CommParams{}), Error);
  EXPECT_THROW(ddnn_comm_bytes(1.1, CommParams{}), Error);
}

// --------------------------------------------------------------- aggregator

TEST(AggKind, ParseAndPrintRoundTrip) {
  for (const auto kind : {AggKind::kMaxPool, AggKind::kAvgPool,
                          AggKind::kConcat, AggKind::kGatedAvg}) {
    EXPECT_EQ(parse_agg_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_agg_kind("XX"), Error);
}

TEST(VectorAggregator, GatedAverageStartsAsUniformMean) {
  // Fresh GA gates are zero, so the initial behaviour equals AP; training
  // can then move the weights away from uniform.
  Rng rng(31);
  VectorAggregator ga(AggKind::kGatedAvg, 2, 3, rng);
  std::vector<Variable> in{
      Variable(Tensor::from_vector(Shape{1, 3}, {1, 2, 3})),
      Variable(Tensor::from_vector(Shape{1, 3}, {3, 4, 5}))};
  const Tensor out = ga.forward(in).value();
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 3.0f);
  EXPECT_FLOAT_EQ(out[2], 4.0f);
  EXPECT_EQ(ga.parameters().size(), 1u);  // the gate vector is trainable
}

TEST(VectorAggregator, GatedAverageWeighsByGate) {
  Rng rng(32);
  VectorAggregator ga(AggKind::kGatedAvg, 2, 1, rng);
  // Strongly favour branch 1.
  ga.parameters()[0].var.value()[1] = 20.0f;
  std::vector<Variable> in{Variable(Tensor::full(Shape{1, 1}, -4.0f)),
                           Variable(Tensor::full(Shape{1, 1}, 8.0f))};
  EXPECT_NEAR(ga.forward(in).value()[0], 8.0f, 1e-4f);
}

TEST(VectorAggregator, MaxPoolTakesComponentwiseMax) {
  Rng rng(1);
  VectorAggregator agg(AggKind::kMaxPool, 2, 3, rng);
  std::vector<Variable> in{
      Variable(Tensor::from_vector(Shape{1, 3}, {1, 5, 2})),
      Variable(Tensor::from_vector(Shape{1, 3}, {4, 0, 3}))};
  const Tensor out = agg.forward(in).value();
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 5.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
}

TEST(VectorAggregator, AvgPoolTakesMean) {
  Rng rng(2);
  VectorAggregator agg(AggKind::kAvgPool, 2, 2, rng);
  std::vector<Variable> in{
      Variable(Tensor::from_vector(Shape{1, 2}, {1, 3})),
      Variable(Tensor::from_vector(Shape{1, 2}, {3, 5}))};
  const Tensor out = agg.forward(in).value();
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(VectorAggregator, ConcatKeepsOutputDimsViaProjection) {
  Rng rng(3);
  VectorAggregator agg(AggKind::kConcat, 3, 4, rng);
  std::vector<Variable> in(3, Variable(Tensor::ones(Shape{2, 4})));
  EXPECT_EQ(agg.forward(in).shape(), Shape({2, 4}));
  EXPECT_FALSE(agg.parameters().empty());  // learned projection
}

TEST(VectorAggregator, PoolingSchemesHaveNoParameters) {
  Rng rng(4);
  VectorAggregator mp(AggKind::kMaxPool, 4, 3, rng);
  VectorAggregator ap(AggKind::kAvgPool, 4, 3, rng);
  EXPECT_TRUE(mp.parameters().empty());
  EXPECT_TRUE(ap.parameters().empty());
}

TEST(VectorAggregator, MaskDropsFailedBranches) {
  Rng rng(5);
  VectorAggregator agg(AggKind::kMaxPool, 3, 2, rng);
  std::vector<Variable> in{
      Variable(Tensor::from_vector(Shape{1, 2}, {9, 9})),
      Variable(Tensor::from_vector(Shape{1, 2}, {1, 2})),
      Variable(Tensor::from_vector(Shape{1, 2}, {3, 1}))};
  const Tensor out = agg.forward(in, {false, true, true}).value();
  EXPECT_FLOAT_EQ(out[0], 3.0f);  // the 9s are from the failed device
  EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(VectorAggregator, AllBranchesFailedThrows) {
  Rng rng(6);
  VectorAggregator agg(AggKind::kAvgPool, 2, 2, rng);
  std::vector<Variable> in(2, Variable(Tensor::ones(Shape{1, 2})));
  EXPECT_THROW(agg.forward(in, {false, false}), Error);
}

TEST(VectorAggregator, SingleBranchIsIdentity) {
  Rng rng(7);
  VectorAggregator agg(AggKind::kConcat, 1, 3, rng);
  Variable x(Tensor::from_vector(Shape{1, 3}, {1, 2, 3}));
  EXPECT_TRUE(agg.forward({x}).value().allclose(x.value(), 0.0f));
}

TEST(FeatureMapAggregator, MaxAndMeanShapes) {
  Rng rng(8);
  FeatureMapAggregator mp(AggKind::kMaxPool, 3, 4, rng);
  FeatureMapAggregator cc(AggKind::kConcat, 3, 4, rng);
  std::vector<Variable> in(3, Variable(Tensor::ones(Shape{2, 4, 8, 8})));
  EXPECT_EQ(mp.forward(in).shape(), Shape({2, 4, 8, 8}));
  EXPECT_EQ(cc.forward(in).shape(), Shape({2, 4, 8, 8}));
}

TEST(FeatureMapAggregator, ConcatZeroFillsFailedBranch) {
  Rng rng(9);
  FeatureMapAggregator cc(AggKind::kConcat, 2, 1, rng);
  std::vector<Variable> in{Variable(Tensor::ones(Shape{1, 1, 2, 2})),
                           Variable(Tensor::ones(Shape{1, 1, 2, 2}))};
  // With one branch failed, the projection input differs, so outputs differ.
  const Tensor full = cc.forward(in).value();
  const Tensor degraded = cc.forward(in, {true, false}).value();
  EXPECT_FALSE(full.allclose(degraded, 1e-6f));
}

// -------------------------------------------------------------------- config

TEST(Config, PresetShapesMatchFigure2) {
  const auto a = DdnnConfig::preset(HierarchyPreset::kCloudOnly);
  EXPECT_EQ(a.num_exits(), 1);
  EXPECT_FALSE(a.has_local_exit);
  EXPECT_EQ(a.device_conv_blocks, 0);

  const auto b = DdnnConfig::preset(HierarchyPreset::kDeviceCloud);
  EXPECT_EQ(b.num_devices, 1);
  EXPECT_EQ(b.num_exits(), 2);

  const auto c = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  EXPECT_EQ(c.num_devices, 6);
  EXPECT_EQ(c.num_exits(), 2);

  const auto d = DdnnConfig::preset(HierarchyPreset::kDeviceEdgeCloud);
  EXPECT_EQ(d.num_exits(), 3);
  EXPECT_EQ(d.edge_groups.size(), 1u);

  const auto e = DdnnConfig::preset(HierarchyPreset::kDevicesEdgeCloud);
  EXPECT_EQ(e.num_exits(), 3);
  EXPECT_EQ(e.edge_groups[0].size(), 6u);

  const auto f = DdnnConfig::preset(HierarchyPreset::kDevicesEdgesCloud);
  EXPECT_EQ(f.edge_groups.size(), 2u);
  EXPECT_EQ(f.num_exits(), 3);
}

TEST(Config, DerivedGeometry) {
  DdnnConfig cfg;
  EXPECT_EQ(cfg.device_out_size(), 16);
  EXPECT_EQ(cfg.filter_output_bits(), 256);  // o in Eq. 1
  const auto p = cfg.comm_params();
  EXPECT_EQ(p.num_classes, 3);
  EXPECT_EQ(p.filters, 4);
}

TEST(Config, ValidateCatchesInconsistencies) {
  DdnnConfig cfg;
  cfg.device_conv_blocks = 0;  // raw offload but local exit still set
  EXPECT_THROW(cfg.validate(), Error);

  DdnnConfig cfg2;
  cfg2.edge_groups = {{0, 1}};  // does not cover all 6 devices
  EXPECT_THROW(cfg2.validate(), Error);

  DdnnConfig cfg3;
  cfg3.edge_groups = {{0, 1, 2}, {2, 3, 4, 5}};  // device 2 twice
  EXPECT_THROW(cfg3.validate(), Error);

  DdnnConfig cfg4;
  cfg4.cloud_filters = {8, 8, 8, 8, 8};  // shrinks 16 -> 0
  EXPECT_THROW(cfg4.validate(), Error);
}

TEST(Config, CacheKeyDistinguishesArchitectures) {
  DdnnConfig a, b;
  b.device_filters = 8;
  EXPECT_NE(a.cache_key(), b.cache_key());
  DdnnConfig c;
  c.local_agg = AggKind::kAvgPool;
  EXPECT_NE(a.cache_key(), c.cache_key());
  DdnnConfig d;
  EXPECT_EQ(a.cache_key(), d.cache_key());
}

// ----------------------------------------------------------- policy math

/// Hand-built two-exit evaluation: 4 samples with controlled confidence.
ExitEval synthetic_eval() {
  ExitEval eval;
  eval.exit_names = {"local", "cloud"};
  eval.labels = {0, 1, 2, 0};
  // Local: confident+correct, confident+wrong, uncertain, uncertain.
  eval.exit_probs.push_back(Tensor::from_vector(
      Shape{4, 3}, {0.98f, 0.01f, 0.01f,   //
                    0.98f, 0.01f, 0.01f,   // wrong (label 1)
                    0.33f, 0.33f, 0.34f,   //
                    0.40f, 0.30f, 0.30f}));
  // Cloud: correct on everything.
  eval.exit_probs.push_back(Tensor::from_vector(
      Shape{4, 3}, {0.9f, 0.05f, 0.05f,    //
                    0.05f, 0.9f, 0.05f,    //
                    0.05f, 0.05f, 0.9f,    //
                    0.9f, 0.05f, 0.05f}));
  return eval;
}

TEST(Policy, ThresholdZeroSendsEverythingToCloud) {
  const auto r = apply_policy(synthetic_eval(), {0.0});
  EXPECT_DOUBLE_EQ(r.local_exit_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.overall_accuracy, 1.0);
}

TEST(Policy, ThresholdOneExitsEverythingLocally) {
  const auto r = apply_policy(synthetic_eval(), {1.0});
  EXPECT_DOUBLE_EQ(r.local_exit_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.overall_accuracy, 0.75);  // sample 2 wrong at local
}

TEST(Policy, IntermediateThresholdSplits) {
  // T=0.5: the two confident samples exit locally (one of them wrong),
  // the uncertain two go to the cloud (both right) -> accuracy 3/4.
  const auto r = apply_policy(synthetic_eval(), {0.5});
  EXPECT_DOUBLE_EQ(r.local_exit_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(r.overall_accuracy, 0.75);
  EXPECT_EQ(r.decisions[0].exit_taken, 0);
  EXPECT_EQ(r.decisions[2].exit_taken, 1);
}

TEST(Policy, ExitFractionsSumToOne) {
  for (double t : {0.0, 0.3, 0.7, 1.0}) {
    const auto r = apply_policy(synthetic_eval(), {t});
    double sum = 0;
    for (double f : r.exit_fraction) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Policy, ValidatesThresholdCount) {
  EXPECT_THROW(apply_policy(synthetic_eval(), {0.5, 0.5}), Error);
  EXPECT_THROW(apply_policy(synthetic_eval(), {}), Error);
}

TEST(Policy, ExitAccuracyComputesPerExit) {
  const auto eval = synthetic_eval();
  EXPECT_DOUBLE_EQ(exit_accuracy(eval, 0), 0.75);
  EXPECT_DOUBLE_EQ(exit_accuracy(eval, 1), 1.0);
}

TEST(Policy, BestOverallSearchFindsCloudWhenLocalIsWeak) {
  // Cloud is perfect, local makes a mistake: best policy sends the
  // confident-but-wrong sample up, i.e. accuracy 1.0 is reachable at T=0.
  const double t = search_threshold_best_overall(synthetic_eval(), 0.05);
  const auto r = apply_policy(synthetic_eval(), {t});
  EXPECT_DOUBLE_EQ(r.overall_accuracy, 1.0);
}

TEST(Policy, FractionSearchHitsTarget) {
  const double t =
      search_threshold_for_local_fraction(synthetic_eval(), 0.5, 0.05);
  const auto r = apply_policy(synthetic_eval(), {t});
  EXPECT_GE(r.local_exit_fraction(), 0.5);
}

TEST(Policy, JointSearchMatchesSingleKnobOnTwoExits) {
  const auto eval = synthetic_eval();
  const double single = search_threshold_best_overall(eval, 0.25);
  const auto joint = search_thresholds_best_overall(eval, 0.25);
  ASSERT_EQ(joint.size(), 1u);
  EXPECT_DOUBLE_EQ(apply_policy(eval, {single}).overall_accuracy,
                   apply_policy(eval, joint).overall_accuracy);
}

TEST(Policy, JointSearchHandlesThreeExits) {
  // Local never confident; edge right on sample 0, cloud right on both.
  ExitEval eval;
  eval.exit_names = {"local", "edge", "cloud"};
  eval.labels = {0, 1};
  eval.exit_probs = {
      Tensor::from_vector(Shape{2, 3}, {0.34f, 0.33f, 0.33f,  //
                                        0.34f, 0.33f, 0.33f}),
      Tensor::from_vector(Shape{2, 3}, {0.97f, 0.02f, 0.01f,  //
                                        0.34f, 0.33f, 0.33f}),
      Tensor::from_vector(Shape{2, 3}, {0.97f, 0.02f, 0.01f,  //
                                        0.02f, 0.97f, 0.01f})};
  const auto best = search_thresholds_best_overall(eval, 0.25);
  ASSERT_EQ(best.size(), 2u);
  const auto r = apply_policy(eval, best);
  EXPECT_DOUBLE_EQ(r.overall_accuracy, 1.0);
  // Tie-breaking prefers earlier exits: sample 0 should stop at the edge.
  EXPECT_EQ(r.decisions[0].exit_taken, 1);
  EXPECT_EQ(r.decisions[1].exit_taken, 2);
}

TEST(Policy, CriteriaSelectEquivalentThresholdsAtMatchedScale) {
  // Applying the unnormalized criterion at T * log|C| must reproduce the
  // normalized criterion at T exactly.
  const auto eval = synthetic_eval();
  for (double t : {0.2, 0.5, 0.9}) {
    const auto a =
        apply_policy(eval, {t}, ConfidenceCriterion::kNormalizedEntropy);
    const auto b = apply_policy(eval, {t * std::log(3.0)},
                                ConfidenceCriterion::kUnnormalizedEntropy);
    EXPECT_DOUBLE_EQ(a.overall_accuracy, b.overall_accuracy);
    EXPECT_DOUBLE_EQ(a.local_exit_fraction(), b.local_exit_fraction());
  }
}

TEST(Policy, ThreeExitPolicyFallsThrough) {
  ExitEval eval;
  eval.exit_names = {"local", "edge", "cloud"};
  eval.labels = {0, 0};
  const auto uncertain = std::vector<float>{0.34f, 0.33f, 0.33f};
  const auto confident = std::vector<float>{0.98f, 0.01f, 0.01f};
  auto probs = [&](std::vector<float> a, std::vector<float> b) {
    a.insert(a.end(), b.begin(), b.end());
    return Tensor::from_vector(Shape{2, 3}, std::move(a));
  };
  eval.exit_probs = {probs(uncertain, uncertain),   // local: never confident
                     probs(confident, uncertain),   // edge: sample 0 only
                     probs(confident, confident)};  // cloud
  const auto r = apply_policy(eval, {0.5, 0.5});
  EXPECT_EQ(r.decisions[0].exit_taken, 1);
  EXPECT_EQ(r.decisions[1].exit_taken, 2);
  EXPECT_DOUBLE_EQ(r.exit_fraction[0], 0.0);
  EXPECT_DOUBLE_EQ(r.exit_fraction[1], 0.5);
  EXPECT_DOUBLE_EQ(r.exit_fraction[2], 0.5);
}

}  // namespace
}  // namespace ddnn::core
