#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "nn/layers.hpp"
#include "opt/optimizer.hpp"
#include "util/error.hpp"

namespace ddnn::opt {
namespace {

using autograd::Variable;
using nn::Parameter;

Parameter make_param(Tensor value, bool clamp = false) {
  return {"p", Variable::parameter(std::move(value)), clamp};
}

/// One optimization step on f(x) = 0.5 * ||x - target||^2.
void quadratic_step(Optimizer& opt, Parameter& p, const Tensor& target) {
  opt.zero_grad();
  Tensor grad(p.var.value().shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] = p.var.value()[i] - target[i];
  }
  p.var.accumulate_grad(grad);
  opt.step();
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter p = make_param(Tensor::full(Shape{3}, 4.0f));
  const Tensor target = Tensor::from_vector(Shape{3}, {1.0f, -2.0f, 0.5f});
  Adam adam({p}, {.lr = 0.05f});
  for (int i = 0; i < 500; ++i) quadratic_step(adam, p, target);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.var.value()[i], target[i], 1e-2f);
  }
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // Adam's bias-corrected first step is exactly lr * sign(grad) (up to eps).
  Parameter p = make_param(Tensor::zeros(Shape{2}));
  Adam adam({p}, {.lr = 0.001f});
  adam.zero_grad();
  p.var.accumulate_grad(Tensor::from_vector(Shape{2}, {0.5f, -3.0f}));
  adam.step();
  EXPECT_NEAR(p.var.value()[0], -0.001f, 1e-5f);
  EXPECT_NEAR(p.var.value()[1], 0.001f, 1e-5f);
}

TEST(Adam, SkipsParametersWithoutGradients) {
  Parameter a = make_param(Tensor::full(Shape{1}, 1.0f));
  Parameter b = make_param(Tensor::full(Shape{1}, 1.0f));
  Adam adam({a, b});
  a.var.accumulate_grad(Tensor::ones(Shape{1}));
  adam.step();
  EXPECT_NE(a.var.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.var.value()[0], 1.0f);
}

TEST(Adam, MatchesReferenceImplementationForTwoSteps) {
  // Hand-computed Adam with lr=0.1, b1=0.9, b2=0.999, eps=1e-8, grad = 1
  // then 2, starting from 0.
  Parameter p = make_param(Tensor::zeros(Shape{1}));
  Adam adam({p}, {.lr = 0.1f});
  adam.zero_grad();
  p.var.accumulate_grad(Tensor::ones(Shape{1}));
  adam.step();
  // Step 1: mhat = 1, vhat = 1 -> x = -0.1.
  EXPECT_NEAR(p.var.value()[0], -0.1f, 1e-5f);
  adam.zero_grad();
  p.var.accumulate_grad(Tensor::full(Shape{1}, 2.0f));
  adam.step();
  // Step 2: m = 0.9*0.1+0.1*2 = 0.29, mhat = 0.29/0.19 = 1.526316;
  //         v = 0.999*0.001+0.001*4 = 0.004999, vhat = 0.004999/0.001999
  //           = 2.50075; x -= 0.1 * 1.526316 / sqrt(2.50075).
  EXPECT_NEAR(p.var.value()[0], -0.1f - 0.1f * 1.526316f / std::sqrt(2.50075f),
              1e-4f);
}

TEST(Sgd, PlainGradientDescent) {
  Parameter p = make_param(Tensor::full(Shape{1}, 1.0f));
  Sgd sgd({p}, 0.5f);
  sgd.zero_grad();
  p.var.accumulate_grad(Tensor::full(Shape{1}, 2.0f));
  sgd.step();
  EXPECT_FLOAT_EQ(p.var.value()[0], 0.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Parameter p = make_param(Tensor::zeros(Shape{1}));
  Sgd sgd({p}, 0.1f, 0.9f);
  for (int i = 0; i < 2; ++i) {
    sgd.zero_grad();
    p.var.accumulate_grad(Tensor::ones(Shape{1}));
    sgd.step();
  }
  // v1 = -0.1; x1 = -0.1. v2 = 0.9*(-0.1) - 0.1 = -0.19; x2 = -0.29.
  EXPECT_NEAR(p.var.value()[0], -0.29f, 1e-6f);
}

TEST(Optimizer, ClampsLatentBinaryWeights) {
  Parameter p = make_param(Tensor::full(Shape{2}, 0.95f), /*clamp=*/true);
  Sgd sgd({p}, 1.0f);
  sgd.zero_grad();
  p.var.accumulate_grad(Tensor::from_vector(Shape{2}, {-1.0f, 3.0f}));
  sgd.step();
  // Unclamped values would be 1.95 and -2.05.
  EXPECT_FLOAT_EQ(p.var.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(p.var.value()[1], -1.0f);
}

TEST(Optimizer, DoesNotClampRegularWeights) {
  Parameter p = make_param(Tensor::full(Shape{1}, 0.0f), /*clamp=*/false);
  Sgd sgd({p}, 1.0f);
  sgd.zero_grad();
  p.var.accumulate_grad(Tensor::full(Shape{1}, -5.0f));
  sgd.step();
  EXPECT_FLOAT_EQ(p.var.value()[0], 5.0f);
}

TEST(Optimizer, RejectsEmptyParameterList) {
  EXPECT_THROW(Adam adam({}), Error);
}

TEST(Optimizer, ZeroGradClearsAllGradients) {
  Parameter p = make_param(Tensor::zeros(Shape{2}));
  Adam adam({p});
  p.var.accumulate_grad(Tensor::ones(Shape{2}));
  adam.zero_grad();
  EXPECT_FLOAT_EQ(p.var.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(p.var.grad()[1], 0.0f);
}

TEST(Optimizer, GradientClipRescalesGlobalNorm) {
  Parameter a = make_param(Tensor::zeros(Shape{1}));
  Parameter b = make_param(Tensor::zeros(Shape{1}));
  Sgd sgd({a, b}, 1.0f);
  sgd.set_gradient_clip(5.0f);
  sgd.zero_grad();
  a.var.accumulate_grad(Tensor::full(Shape{1}, 3.0f));
  b.var.accumulate_grad(Tensor::full(Shape{1}, 4.0f));  // ||g|| = 5: no clip
  sgd.step();
  EXPECT_NEAR(a.var.value()[0], -3.0f, 1e-5f);
  sgd.zero_grad();
  a.var.value().fill(0.0f);
  b.var.value().fill(0.0f);
  a.var.accumulate_grad(Tensor::full(Shape{1}, 6.0f));
  b.var.accumulate_grad(Tensor::full(Shape{1}, 8.0f));  // ||g|| = 10 -> x0.5
  sgd.step();
  EXPECT_NEAR(a.var.value()[0], -3.0f, 1e-5f);
  EXPECT_NEAR(b.var.value()[0], -4.0f, 1e-5f);
}

TEST(Optimizer, GradientClipValidates) {
  Parameter p = make_param(Tensor::zeros(Shape{1}));
  Sgd sgd({p}, 1.0f);
  EXPECT_THROW(sgd.set_gradient_clip(-1.0f), Error);
}

TEST(Optimizer, LearningRateOverride) {
  Parameter p = make_param(Tensor::zeros(Shape{1}));
  Sgd sgd({p}, 0.5f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.5f);
  sgd.set_learning_rate(0.25f);
  sgd.zero_grad();
  p.var.accumulate_grad(Tensor::full(Shape{1}, 4.0f));
  sgd.step();
  EXPECT_FLOAT_EQ(p.var.value()[0], -1.0f);

  Parameter q = make_param(Tensor::zeros(Shape{1}));
  Adam adam({q}, {.lr = 0.1f});
  adam.set_learning_rate(0.001f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.001f);
}

TEST(Adam, TrainsATinyNetworkToFitXor) {
  // End-to-end sanity: a small float MLP fits XOR with Adam.
  Rng rng(123);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 8, rng);
  auto& hidden_bn = net.emplace<nn::BatchNorm>(8);
  (void)hidden_bn;
  nn::Linear out(8, 2, rng);

  const Tensor x = Tensor::from_vector(Shape{4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<std::int64_t> y{0, 1, 1, 0};

  std::vector<nn::Parameter> params = net.parameters();
  for (auto& p : out.parameters()) params.push_back(p);
  Adam adam(params, {.lr = 0.02f});
  float final_loss = 1e9f;
  for (int i = 0; i < 300; ++i) {
    Variable h = autograd::relu(net.forward(Variable(x)));
    Variable loss = autograd::softmax_cross_entropy(out.forward(h), y);
    adam.zero_grad();
    loss.backward();
    adam.step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.1f);
}

}  // namespace
}  // namespace ddnn::opt
