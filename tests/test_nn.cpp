#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gradcheck.hpp"
#include "nn/blocks.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace ddnn::nn {
namespace {

using autograd::Variable;

TEST(Module, ParameterRegistryIsRecursiveAndStable) {
  Rng rng(1);
  Sequential seq;
  seq.emplace<Linear>(4, 3, rng);
  seq.emplace<BatchNorm>(3);
  const auto params = seq.named_parameters();
  ASSERT_EQ(params.size(), 4u);  // weight, bias, gamma, beta
  EXPECT_EQ(params[0].name, "stage0.weight");
  EXPECT_EQ(params[1].name, "stage0.bias");
  EXPECT_EQ(params[2].name, "stage1.gamma");
  EXPECT_EQ(params[3].name, "stage1.beta");
}

TEST(Module, BuffersAreRegistered) {
  BatchNorm bn(5);
  const auto buffers = bn.named_buffers();
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0].first, "running_mean");
  EXPECT_EQ(buffers[1].first, "running_var");
}

TEST(Module, TrainingFlagPropagates) {
  Rng rng(1);
  Sequential seq;
  auto& bn = seq.emplace<BatchNorm>(2);
  EXPECT_TRUE(bn.training());
  seq.set_training(false);
  EXPECT_FALSE(bn.training());
}

TEST(Module, ParameterCount) {
  Rng rng(1);
  Linear lin(10, 4, rng);
  EXPECT_EQ(lin.parameter_count(), 10 * 4 + 4);
}

TEST(Linear, OutputShapeAndBias) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  Variable y = lin.forward(Variable(Tensor::zeros(Shape{5, 3})));
  EXPECT_EQ(y.shape(), Shape({5, 2}));
  // Zero input -> output equals the (zero-initialized) bias.
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.value()[i], 0.0f);
}

TEST(Linear, GradCheckThroughLayer) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  Variable x = Variable::parameter(Tensor::randn(Shape{4, 3}, rng));
  auto leaves = std::vector<Variable>{x};
  for (auto& p : lin.parameters()) leaves.push_back(p.var);
  ddnn::testing::expect_gradients_match(
      [&] {
        Variable y = lin.forward(x);
        Variable flat = autograd::reshape(y, Shape{1, y.numel()});
        return autograd::matmul(flat,
                                Variable(Tensor::ones(Shape{y.numel(), 1})));
      },
      leaves);
}

TEST(BinaryLinear, WeightsAreBinarizedInForward) {
  Rng rng(4);
  BinaryLinear lin(8, 4, rng);
  // With an all-ones input, each output is sum of binarized weights, which
  // must be an integer with the same parity as the input width.
  Variable y = lin.forward(Variable(Tensor::ones(Shape{2, 8})));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.value()[i];
    EXPECT_FLOAT_EQ(v, std::round(v));
    EXPECT_EQ(static_cast<int>(std::fabs(v)) % 2, 0);  // 8 odd terms of +-1
    EXPECT_LE(std::fabs(v), 8.0f);
  }
}

TEST(BinaryLinear, ClampFlagIsSet) {
  Rng rng(5);
  BinaryLinear lin(4, 2, rng);
  const auto params = lin.parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(params[0].clamp_to_unit);
}

TEST(Conv2d, PreservesSpatialSizeWith3x3S1P1) {
  Rng rng(6);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Variable y = conv.forward(Variable(Tensor::zeros(Shape{2, 3, 16, 16})));
  EXPECT_EQ(y.shape(), Shape({2, 8, 16, 16}));
}

TEST(Conv2d, MatchesDirectConvolutionOnKnownInput) {
  // 1 input channel, 1 filter of all ones, no padding edge effects checked
  // at the centre: output = sum of the 3x3 neighbourhood.
  Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, rng, /*bias=*/false);
  conv.parameters()[0].var.value().fill(1.0f);
  Tensor img(Shape{1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) img[i] = static_cast<float>(i + 1);
  Variable y = conv.forward(Variable(img));
  EXPECT_FLOAT_EQ(y.value().at(0, 0, 1, 1), 45.0f);  // sum 1..9
  EXPECT_FLOAT_EQ(y.value().at(0, 0, 0, 0), 1 + 2 + 4 + 5);
}

TEST(BinaryConv2d, OutputsHaveIntegerValues) {
  Rng rng(8);
  BinaryConv2d conv(2, 3, 3, 1, 1, rng);
  Variable x(Tensor::ones(Shape{1, 2, 4, 4}));
  Variable y = conv.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], std::round(y.value()[i]));
  }
}

TEST(MaxPool2d, ConvPGeometryHalves) {
  MaxPool2d pool(3, 2, 1);
  Variable y = pool.forward(Variable(Tensor::zeros(Shape{1, 4, 32, 32})));
  EXPECT_EQ(y.shape(), Shape({1, 4, 16, 16}));
}

TEST(BatchNorm, NormalizesBatchInTrainingMode) {
  Rng rng(9);
  BatchNorm bn(3);
  Variable x(Tensor::randn(Shape{64, 3}, rng, 5.0f, 2.0f));
  Variable y = bn.forward(x);
  // Output per feature: ~zero mean, ~unit variance.
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    for (std::int64_t i = 0; i < 64; ++i) mean += y.value().at(i, c);
    mean /= 64;
    for (std::int64_t i = 0; i < 64; ++i) {
      const double d = y.value().at(i, c) - mean;
      var += d * d;
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  Rng rng(10);
  BatchNorm bn(2);
  const Tensor x = Tensor::randn(Shape{256, 2}, rng, 3.0f, 1.5f);
  for (int i = 0; i < 200; ++i) bn.forward(Variable(x));
  const auto buffers = bn.named_buffers();
  EXPECT_NEAR(buffers[0].second[0], 3.0f, 0.2f);
  EXPECT_NEAR(std::sqrt(buffers[1].second[0]), 1.5f, 0.2f);
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  Rng rng(11);
  BatchNorm bn(2);
  // Train on one distribution, then eval on a constant input: output must
  // reflect the *running* statistics, not the (degenerate) batch ones.
  const Tensor x = Tensor::randn(Shape{128, 2}, rng, 1.0f, 1.0f);
  for (int i = 0; i < 100; ++i) bn.forward(Variable(x));
  bn.set_training(false);
  Variable y = bn.forward(Variable(Tensor::full(Shape{4, 2}, 1.0f)));
  // Input equals the population mean; the running mean is within a few
  // standard errors of it, so the normalized output is near 0 — while batch
  // statistics of this constant input would be degenerate (variance 0).
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.value()[i], 0.0f, 0.3f);
  }
}

TEST(FCBlock, ExitHeadVariantEmitsFloats) {
  Rng rng(12);
  FCBlock head(16, 3, rng, /*binary_output=*/false);
  Variable x(Tensor::randn(Shape{8, 16}, rng));
  Variable y = head.forward(x);
  EXPECT_EQ(y.shape(), Shape({8, 3}));
  bool any_nonbinary = false;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.value()[i] != 1.0f && y.value()[i] != -1.0f) any_nonbinary = true;
  }
  EXPECT_TRUE(any_nonbinary);
}

TEST(FCBlock, BinaryVariantEmitsSigns) {
  Rng rng(13);
  FCBlock block(16, 8, rng, /*binary_output=*/true);
  Variable x(Tensor::randn(Shape{4, 16}, rng));
  Variable y = block.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.value()[i] == 1.0f || y.value()[i] == -1.0f);
  }
}

TEST(ConvPBlock, ShapeAndBinaryOutput) {
  Rng rng(14);
  ConvPBlock block(3, 4, rng);
  Variable x(Tensor::randn(Shape{2, 3, 32, 32}, rng));
  Variable y = block.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 4, 16, 16}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.value()[i] == 1.0f || y.value()[i] == -1.0f);
  }
}

TEST(ConvPBlock, MemoryFootprintMatchesPaperScale) {
  Rng rng(15);
  // Paper Section IV-F: device NN layers fit in under 2 KB. One ConvP block
  // with f=4 on RGB input: 4*3*9 = 108 weight bits -> 14 B + 64 B of BN.
  ConvPBlock block(3, 4, rng);
  EXPECT_EQ(block.inference_memory_bytes(), (4 * 3 * 9 + 7) / 8 + 4 * 4 * 4);
  EXPECT_LT(block.inference_memory_bytes(), 2048);
}

TEST(FloatConvPBlock, ShapeAndNonNegativeOutput) {
  Rng rng(31);
  FloatConvPBlock block(3, 8, rng);
  Variable y = block.forward(Variable(Tensor::randn(Shape{2, 3, 32, 32}, rng)));
  EXPECT_EQ(y.shape(), Shape({2, 8, 16, 16}));
  bool any_fractional = false;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.value()[i], 0.0f);  // ReLU output
    any_fractional = any_fractional ||
                     (y.value()[i] != 0.0f && y.value()[i] != 1.0f &&
                      y.value()[i] != -1.0f);
  }
  EXPECT_TRUE(any_fractional);  // genuinely float, not binarized
}

TEST(FloatFCBlock, HeadVariantEmitsSignedScores) {
  Rng rng(32);
  FloatFCBlock head(8, 3, rng, /*relu_output=*/false);
  Variable y = head.forward(Variable(Tensor::randn(Shape{16, 8}, rng)));
  EXPECT_EQ(y.shape(), Shape({16, 3}));
  bool any_negative = false;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    any_negative = any_negative || y.value()[i] < 0.0f;
  }
  EXPECT_TRUE(any_negative);  // no ReLU on the exit head
}

TEST(FloatFCBlock, ReluVariantClampsBelowZero) {
  Rng rng(33);
  FloatFCBlock block(8, 4, rng, /*relu_output=*/true);
  Variable y = block.forward(Variable(Tensor::randn(Shape{16, 8}, rng)));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.value()[i], 0.0f);
  }
}

TEST(Sequential, ChainsForward) {
  Rng rng(16);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng);
  seq.emplace<BatchNorm>(8);
  seq.emplace<Flatten>();
  Variable y = seq.forward(Variable(Tensor::randn(Shape{3, 4}, rng)));
  EXPECT_EQ(y.shape(), Shape({3, 8}));
  EXPECT_EQ(seq.size(), 3u);
}

TEST(Serialize, RoundTripRestoresParametersAndBuffers) {
  Rng rng(17);
  const std::string path = ::testing::TempDir() + "/ddnn_state_test.bin";

  Sequential original;
  original.emplace<Linear>(4, 3, rng);
  original.emplace<BatchNorm>(3);
  // Mutate running stats so buffers differ from init.
  original.forward(Variable(Tensor::randn(Shape{16, 4}, rng)));
  save_state(original, path);

  Rng rng2(99);  // different init
  Sequential restored;
  restored.emplace<Linear>(4, 3, rng2);
  restored.emplace<BatchNorm>(3);
  load_state(restored, path);

  const auto pa = original.named_parameters();
  const auto pb = restored.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].var.value().allclose(pb[i].var.value(), 0.0f))
        << pa[i].name;
  }
  const auto ba = original.named_buffers();
  const auto bb = restored.named_buffers();
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_TRUE(ba[i].second.allclose(bb[i].second, 0.0f)) << ba[i].first;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, LoadRejectsMismatchedArchitecture) {
  Rng rng(18);
  const std::string path = ::testing::TempDir() + "/ddnn_state_mismatch.bin";
  Linear small(2, 2, rng);
  save_state(small, path);
  Linear big(4, 4, rng);
  EXPECT_THROW(load_state(big, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsTruncatedFile) {
  Rng rng(20);
  const std::string path = ::testing::TempDir() + "/ddnn_state_trunc.bin";
  Linear lin(8, 8, rng);
  save_state(lin, path);
  // Truncate the payload.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  Linear target(8, 8, rng);
  EXPECT_THROW(load_state(target, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/ddnn_state_magic.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTDDNN1" << std::string(64, '\0');
  }
  Rng rng(21);
  Linear lin(2, 2, rng);
  EXPECT_THROW(load_state(lin, path), Error);
  EXPECT_FALSE(is_state_file(path));
  std::filesystem::remove(path);
}

TEST(Serialize, IsStateFileDetection) {
  Rng rng(19);
  const std::string path = ::testing::TempDir() + "/ddnn_state_probe.bin";
  EXPECT_FALSE(is_state_file(path));
  Linear lin(2, 2, rng);
  save_state(lin, path);
  EXPECT_TRUE(is_state_file(path));
  std::filesystem::remove(path);
}

TEST(Init, GlorotBoundFormula) {
  EXPECT_NEAR(glorot_bound(6, 6), std::sqrt(6.0f / 12.0f), 1e-6f);
  EXPECT_GT(glorot_bound(2, 2), glorot_bound(100, 100));
}

}  // namespace
}  // namespace ddnn::nn
