// Tests for the observability layer (src/obs): metrics registry merge
// determinism, histogram percentile edges, runtime span tracing (tree shape
// + exact agreement with InferenceTrace/RuntimeMetrics), trace JSON schema
// and the profiling hooks.
//
// This suite runs under the determinism_obs_sweep CTest: every asserted
// value must be independent of DDNN_THREADS (the registry's merge contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "obs/hdr.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ddnn::obs {
namespace {

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterMergesExactlyAcrossPoolWorkers) {
  MetricsRegistry reg;
  Counter& c = reg.counter("work.items");
  // Record from whatever pool DDNN_THREADS configured: the merged value
  // must be the exact item count no matter how the chunks were split.
  parallel_for(0, 10000, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), 10000);
}

TEST(MetricsRegistry, HistogramMergesExactlyAcrossPoolWorkers) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("work.value", 0.0, 100.0, 10);
  parallel_for(0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      h.record(static_cast<double>(i % 100));
    }
  });
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 99.0);
  const auto bins = h.bin_counts();
  ASSERT_EQ(bins.size(), 10u);
  for (const auto b : bins) EXPECT_EQ(b, 100);  // 10 values per bin, 10x each
}

TEST(MetricsRegistry, JsonIsByteStableAndOrderedByRegistration) {
  MetricsRegistry reg;
  reg.counter("b.second");
  reg.gauge("a.first").set(0.1);
  reg.counter("b.second").add(7);
  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());  // byte-identical re-export
  // Registration order, not name order.
  EXPECT_LT(json.find("b.second"), json.find("a.first"));
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // %.17g round-trips the gauge exactly.
  EXPECT_NE(json.find("0.10000000000000001"), std::string::npos);
}

TEST(MetricsRegistry, NameReuseWithDifferentTypeThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x", 0, 1, 2), Error);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("n").add(5);
  reg.histogram("h", 0, 10, 5).record(3.0);
  reg.reset();
  EXPECT_EQ(reg.counter("n").value(), 0);
  EXPECT_EQ(reg.histogram("h", 0, 10, 5).count(), 0);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"n", "h"}));
}

// ------------------------------------------------------ histogram percentile

TEST(Histogram, PercentileSingleSampleIsThatSample) {
  Histogram h(0.0, 100.0, 10);
  h.record(37.5);
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 37.5) << q;
  }
}

TEST(Histogram, PercentileAllEqualIsThatValue) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.record(42.0);
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 42.0) << q;
  }
}

TEST(Histogram, PercentileMatchesNearestRankOnBinAlignedValues) {
  // One distinct value per bin: the histogram's bin-granular nearest rank
  // must agree exactly with the sorted-vector definition.
  Histogram h(0.5, 100.5, 100);
  std::vector<double> sorted;
  for (int v = 1; v <= 100; ++v) {
    h.record(static_cast<double>(v));
    sorted.push_back(static_cast<double>(v));
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), dist::percentile_nearest_rank(sorted, q)) << q;
  }
}

TEST(Histogram, OutOfRangeValuesClampIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.record(-100.0);
  h.record(1e9);
  const auto bins = h.bin_counts();
  EXPECT_EQ(bins.front(), 1);
  EXPECT_EQ(bins.back(), 1);
  EXPECT_EQ(h.min(), -100.0);  // extrema keep the raw values
  EXPECT_EQ(h.max(), 1e9);
}

TEST(Histogram, PercentileRejectsBadRank) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.percentile(0.0), Error);
  EXPECT_THROW(h.percentile(1.5), Error);
}

// -------------------------------------------------------------- trace JSON

TEST(SpanTracer, GoldenJsonSchema) {
  SpanTracer tracer;
  tracer.set_track_name(0, "samples");
  tracer.set_track_name(1, "device0");
  tracer.add("sample", "sample", 0, 0.0, 0.0025)
      .with("bytes", std::int64_t{72})
      .with("entropy", 0.5)
      .with("note", "a\"b");
  tracer.add("send:scores", "net", 1, 0.002, 0.0005);
  const std::string expected =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
      "\"thread_name\", \"args\": {\"name\": \"samples\"}},\n"
      "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": "
      "\"thread_name\", \"args\": {\"name\": \"device0\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"name\": \"sample\", "
      "\"cat\": \"sample\", \"ts\": 0.000, \"dur\": 2500.000, \"args\": "
      "{\"bytes\": 72, \"entropy\": 0.5, \"note\": \"a\\\"b\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"name\": "
      "\"send:scores\", \"cat\": \"net\", \"ts\": 2000.000, \"dur\": "
      "500.000}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(tracer.to_json(), expected);
}

// ----------------------------------------------------------- runtime spans

struct ObsRuntimeFixture : public ::testing::Test {
  ObsRuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
    model = std::make_unique<core::DdnnModel>(
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
    model->set_training(false);
  }

  std::vector<const obs::Span*> sample_children(const SpanTracer& tracer,
                                                const Span& sample) const {
    std::vector<const obs::Span*> out;
    const double end = sample.start_s + sample.dur_s;
    for (const auto& s : tracer.spans()) {
      if (&s == &sample || s.name == "sample") continue;
      if (s.start_s >= sample.start_s && s.start_s + s.dur_s <= end + 1e-12) {
        out.push_back(&s);
      }
    }
    return out;
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::unique_ptr<core::DdnnModel> model;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(ObsRuntimeFixture, LocalExitSpanTreeShape) {
  // Threshold 1.0: normalized entropy is always <= 1, so every sample
  // classifies at the gateway — device sections, score sends, a gateway
  // fuse, and nothing above.
  dist::HierarchyRuntime runtime(*model, {1.0}, devices);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_EQ(trace.exit_taken, 0);

  const auto& spans = tracer.spans();
  const auto count = [&](const char* name) {
    return std::count_if(spans.begin(), spans.end(),
                         [&](const Span& s) { return s.name == name; });
  };
  EXPECT_EQ(count("sample"), 1);
  EXPECT_EQ(count("device_section"), 6);
  EXPECT_EQ(count("send:scores"), 6);
  EXPECT_EQ(count("gateway_fuse"), 1);
  EXPECT_EQ(count("send:features"), 0);
  EXPECT_EQ(count("cloud_classify"), 0);

  // Root span: exact InferenceTrace agreement, children nested inside.
  const Span& root = spans.back();
  ASSERT_EQ(root.name, "sample");
  EXPECT_EQ(root.dur_s, trace.latency_s);
  EXPECT_EQ(root.arg("latency_s")->d, trace.latency_s);
  EXPECT_EQ(root.arg("bytes")->i, trace.bytes_sent);
  EXPECT_EQ(root.arg("exit")->i, 0);
  EXPECT_EQ(sample_children(tracer, root).size(), spans.size() - 1);
}

TEST_F(ObsRuntimeFixture, CloudOffloadSpanTreeShape) {
  // Threshold -1: the local exit never fires, every sample escalates its
  // features and the cloud classifies.
  dist::HierarchyRuntime runtime(*model, {-1.0}, devices);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_EQ(trace.exit_taken, 1);

  const auto& spans = tracer.spans();
  const auto count = [&](const char* name) {
    return std::count_if(spans.begin(), spans.end(),
                         [&](const Span& s) { return s.name == name; });
  };
  EXPECT_EQ(count("send:scores"), 6);
  EXPECT_EQ(count("send:features"), 6);
  EXPECT_EQ(count("cloud_classify"), 1);

  // Span-summed delivered bytes equal the trace's byte count exactly.
  std::int64_t send_bytes = 0;
  for (const auto& s : spans) {
    if (s.name.rfind("send:", 0) == 0) send_bytes += s.arg("bytes")->i;
  }
  EXPECT_EQ(send_bytes, trace.bytes_sent);
  EXPECT_EQ(spans.back().arg("latency_s")->d, trace.latency_s);
}

TEST_F(ObsRuntimeFixture, DegradedAndDeadSpanShapes) {
  // Drop probability 1: nothing is ever delivered, so after the gateway
  // hears nothing and no feature or raw image arrives, the sample dies.
  dist::HierarchyRuntime runtime(*model, {1.0}, devices);
  dist::FaultPlan plan;
  plan.seed = 5;
  plan.link_drop_prob = 1.0;
  runtime.set_fault_plan(plan);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_TRUE(trace.dead);
  EXPECT_EQ(trace.exit_taken, -1);

  const auto& spans = tracer.spans();
  const Span& root = spans.back();
  ASSERT_EQ(root.name, "sample");
  EXPECT_EQ(root.arg("dead")->i, 1);
  EXPECT_EQ(root.arg("degraded")->i, 1);
  EXPECT_EQ(root.arg("bytes")->i, 0);
  // Sends happened (and failed): attempts recorded, zero delivered bytes.
  bool saw_failed_send = false;
  for (const auto& s : spans) {
    if (s.name.rfind("send:", 0) != 0) continue;
    saw_failed_send = true;
    EXPECT_EQ(s.arg("delivered")->i, 0);
    EXPECT_EQ(s.arg("bytes")->i, 0);
    EXPECT_GT(s.arg("attempts")->i, 1);
  }
  EXPECT_TRUE(saw_failed_send);

  // All devices down: the dead sample's tree is just the flagged root.
  dist::HierarchyRuntime downed(*model, {1.0}, devices);
  for (int b = 0; b < 6; ++b) downed.set_device_failed(b, true);
  SpanTracer tracer2;
  downed.set_tracer(&tracer2);
  const auto dead = downed.classify(dataset->test()[0]);
  EXPECT_TRUE(dead.dead);
  ASSERT_EQ(tracer2.spans().size(), 1u);
  EXPECT_EQ(tracer2.spans()[0].name, "sample");
  EXPECT_EQ(tracer2.spans()[0].dur_s, 0.0);
}

TEST_F(ObsRuntimeFixture, TraceJsonAndBoundMetricsAreRerunIdentical) {
  // The determinism contract end to end: same model + data + plan => byte-
  // identical trace JSON and metrics JSON, and the bound registry agrees
  // exactly with RuntimeMetrics.
  dist::FaultPlan plan;
  plan.seed = 13;
  plan.link_drop_prob = 0.1;
  auto run = [&] {
    dist::HierarchyRuntime runtime(*model, {0.5}, devices);
    runtime.set_fault_plan(plan);
    SpanTracer tracer;
    MetricsRegistry reg;
    runtime.set_tracer(&tracer);
    runtime.bind_metrics(&reg);
    for (const auto& s : dataset->test()) runtime.classify(s);
    return std::tuple{tracer.to_json(), reg.to_json(), runtime.metrics()};
  };
  const auto [trace1, metrics1, rm] = run();
  const auto [trace2, metrics2, rm2] = run();
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);

  // Registry vs RuntimeMetrics: exact.
  dist::HierarchyRuntime runtime(*model, {0.5}, devices);
  runtime.set_fault_plan(plan);
  MetricsRegistry reg;
  runtime.bind_metrics(&reg);
  for (const auto& s : dataset->test()) runtime.classify(s);
  const auto& m = runtime.metrics();
  EXPECT_EQ(reg.counter("runtime.samples").value(), m.samples);
  EXPECT_EQ(reg.counter("runtime.bytes_total").value(), m.total_bytes);
  EXPECT_EQ(reg.counter("runtime.correct").value(), m.correct);
  EXPECT_EQ(reg.counter("runtime.retries").value(), m.reliability.retries);
  EXPECT_EQ(reg.counter("runtime.drops").value(), m.reliability.drops);
  EXPECT_EQ(reg.counter("runtime.timeouts").value(), m.reliability.timeouts);
  EXPECT_EQ(reg.counter("runtime.exit.local").value(), m.exit_counts[0]);
  EXPECT_EQ(reg.counter("runtime.exit.cloud").value(), m.exit_counts[1]);
  EXPECT_EQ(reg.gauge("runtime.total_latency_s").value(), m.total_latency_s);
  EXPECT_EQ(reg.histogram("runtime.sample_latency_ms", 0, 1, 1).count(),
            m.samples);
}

// ---------------------------------------------------------------- profiling

TEST(Profile, DisabledHooksRecordNothing) {
  set_profiling_enabled(false);
  profile_reset();
  {
    DDNN_PROF_SCOPE("obs_test_op");
  }
  EXPECT_EQ(profile_calls("obs_test_op"), 0);
}

TEST(Profile, EnabledHooksCountCallsAndRenderTable) {
  set_profiling_enabled(true);
  profile_reset();
  for (int i = 0; i < 3; ++i) {
    DDNN_PROF_SCOPE("obs_test_op");
  }
  set_profiling_enabled(false);
  EXPECT_EQ(profile_calls("obs_test_op"), 3);
  const std::string table = profile_table().to_string();
  EXPECT_NE(table.find("obs_test_op"), std::string::npos);
  profile_reset();
  EXPECT_EQ(profile_calls("obs_test_op"), 0);
}

TEST(Profile, KernelHooksCoverHotOpsWhenEnabled) {
  set_profiling_enabled(true);
  profile_reset();
  Rng rng(3);
  const Tensor a = Tensor::randn(Shape{8, 16}, rng);
  const Tensor b = Tensor::randn(Shape{16, 8}, rng);
  ops::matmul(a, b);
  set_profiling_enabled(false);
  EXPECT_EQ(profile_calls("matmul"), 1);
  profile_reset();
}

TEST(Profile, TrainerPhasesAndMetricsSink) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 16;
  data_cfg.test_samples = 4;
  data_cfg.seed = 9;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));

  set_profiling_enabled(true);
  profile_reset();
  MetricsRegistry reg;
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.metrics = &reg;
  core::train_ddnn(model, dataset.train(), {0, 1, 2, 3, 4, 5}, cfg);
  set_profiling_enabled(false);

  EXPECT_EQ(reg.counter("train.epochs").value(), 1);
  EXPECT_EQ(reg.counter("train.batches").value(), 2);
  EXPECT_EQ(reg.counter("train.samples").value(), 16);
  EXPECT_EQ(profile_calls("train_forward"), 2);
  EXPECT_EQ(profile_calls("train_backward"), 2);
  EXPECT_EQ(profile_calls("train_step"), 2);
  profile_reset();
}

// -------------------------------------------------------------- HDR buckets

TEST(HdrHistogram, BucketLayoutRoundTripsAndBoundsRelativeError) {
  // Every unit value must land in a bucket whose upper edge is >= the value
  // and within the documented relative error bound (1/128) above it.
  for (const std::int64_t u :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{127}, std::int64_t{128},
        std::int64_t{129}, std::int64_t{255}, std::int64_t{256},
        std::int64_t{1000}, std::int64_t{65535}, std::int64_t{1 << 20},
        std::int64_t{(1ll << 40) + 12345}}) {
    const int b = HdrHistogram::bucket_for_unit(u);
    const std::int64_t upper = HdrHistogram::bucket_upper_unit(b);
    EXPECT_GE(upper, u) << u;
    EXPECT_LE(static_cast<double>(upper - u),
              std::max(1.0, static_cast<double>(u) *
                                HdrHistogram::relative_error_bound()))
        << u;
    if (b > 0) {
      // The bucket below must end strictly under u (buckets partition).
      EXPECT_LT(HdrHistogram::bucket_upper_unit(b - 1), u) << u;
    }
  }
  // Bucket indices are monotone in the value.
  int prev = -1;
  for (std::int64_t u = 0; u < 100000; u += 7) {
    const int b = HdrHistogram::bucket_for_unit(u);
    EXPECT_GE(b, prev) << u;
    prev = b;
  }
}

TEST(HdrHistogram, PercentilesWithinRelativeErrorBoundAndMaxIsExact) {
  HdrHistogram h(1e-3, 3.6e6);  // microsecond resolution up to an hour, in ms
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-ish tail: mostly fast, a sprinkle of 100x outliers.
    const double v = rng.uniform() < 0.99 ? rng.uniform(0.5, 20.0)
                                          : rng.uniform(100.0, 2000.0);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.count(), 20000);
  EXPECT_EQ(h.max(), values.back());  // exact, not a bucket edge
  EXPECT_EQ(h.min(), values.front());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = dist::percentile_nearest_rank(values, q);
    const double est = h.percentile(q);
    EXPECT_GE(est, exact) << q;  // bucket upper edge never understates
    EXPECT_LE(est,
              exact * (1.0 + HdrHistogram::relative_error_bound()) + 2e-3)
        << q;
  }
  EXPECT_EQ(h.percentile(1.0), values.back());
}

TEST(HdrHistogram, OverflowCountsAndKeepsExactMax) {
  HdrHistogram h(1.0, 1000.0);
  h.record(5.0);
  h.record(5000.0);  // beyond max_value: clamped into the top bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.max(), 5000.0);  // extrema keep the raw value
}

TEST(HdrHistogram, ExemplarSmallestSampleIndexWins) {
  HdrHistogram h(1.0, 1000.0);
  // Three samples in the same bucket, recorded out of index order: the
  // exemplar must deterministically resolve to the smallest sample index
  // regardless of arrival order (the thread-race tiebreak rule).
  h.record(500.0, /*trace_id=*/70005, /*sample_index=*/5);
  h.record(500.0, /*trace_id=*/70002, /*sample_index=*/2);
  h.record(500.0, /*trace_id=*/70009, /*sample_index=*/9);
  const HdrExemplar ex = h.exemplar_at(0.99);
  ASSERT_TRUE(ex.valid());
  EXPECT_EQ(ex.sample, 2);
  EXPECT_EQ(ex.trace_id, 70002u);
  const HdrExemplar mx = h.max_exemplar();
  ASSERT_TRUE(mx.valid());
  EXPECT_EQ(mx.sample, 2);
}

TEST(HdrHistogram, MergesExactlyAcrossPoolWorkers) {
  // Same multiset recorded concurrently and serially must agree on every
  // export: counts merge exactly and the exemplar tiebreak is by index.
  HdrHistogram par(1e-3, 3.6e6);
  parallel_for(0, 20000, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double v = 0.5 + static_cast<double>(i % 997);
      par.record(v, static_cast<std::uint64_t>(i + 1), i);
    }
  });
  HdrHistogram ser(1e-3, 3.6e6);
  for (std::int64_t i = 0; i < 20000; ++i) {
    const double v = 0.5 + static_cast<double>(i % 997);
    ser.record(v, static_cast<std::uint64_t>(i + 1), i);
  }
  EXPECT_EQ(par.count(), ser.count());
  EXPECT_EQ(par.max(), ser.max());
  EXPECT_EQ(par.min(), ser.min());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(par.percentile(q), ser.percentile(q)) << q;
    EXPECT_EQ(par.exemplar_at(q).sample, ser.exemplar_at(q).sample) << q;
    EXPECT_EQ(par.exemplar_at(q).trace_id, ser.exemplar_at(q).trace_id) << q;
  }
}

TEST(MetricsRegistry, HdrJsonCarriesExemplarsAndIsByteStable) {
  MetricsRegistry reg;
  HdrHistogram& h = reg.hdr_histogram("runtime.hdr_latency_ms", 1e-3, 3.6e6);
  for (int i = 0; i < 100; ++i) {
    h.record(1.0 + i, static_cast<std::uint64_t>(1000 + i), i);
  }
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"type\": \"hdr\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"max_sample\""), std::string::npos);
  EXPECT_NE(json.find("\"rel_err\""), std::string::npos);
  EXPECT_EQ(json, reg.to_json());  // frozen registry: byte-identical polls
}

// -------------------------------------------------------------- SLO engine

TEST(SloEngine, BurnRateIsBudgetSpendMultiple) {
  SloEngine slo;
  const int id = slo.add_objective(
      {.name = "t.latency", .tier = "t", .target = 0.5});
  // Alternate good/bad for 10 simulated minutes: bad fraction 0.5 spends a
  // 0.5 error budget at exactly 1x in both windows -> warn, not critical.
  for (int t = 0; t < 600; ++t) slo.record(id, t, t % 2 == 0);
  const auto statuses = slo.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].fast_burn, 1.0, 1e-9);
  EXPECT_NEAR(statuses[0].slow_burn, 1.0, 1e-9);
  EXPECT_EQ(statuses[0].state, HealthState::kWarn);
  EXPECT_EQ(slo.overall(), HealthState::kWarn);
}

TEST(SloEngine, AlertNeedsBothWindowsBurning) {
  SloEngine slo;
  const int id = slo.add_objective(
      {.name = "t.latency", .tier = "t", .target = 0.5});
  // 9 good minutes then 1 all-bad minute: the fast window burns at 2x but
  // the slow window sits at 0.2x -> the multi-window rule keeps it ok.
  for (int t = 0; t < 540; ++t) slo.record(id, t, true);
  for (int t = 540; t < 600; ++t) slo.record(id, t, false);
  auto statuses = slo.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].fast_burn, 2.0, 1e-9);
  EXPECT_NEAR(statuses[0].slow_burn, 0.2, 1e-9);
  EXPECT_EQ(statuses[0].state, HealthState::kOk);

  // Sustained all-bad burns both windows at 2x -> critical.
  SloEngine bad;
  const int id2 = bad.add_objective(
      {.name = "t.latency", .tier = "t", .target = 0.5});
  for (int t = 0; t < 600; ++t) bad.record(id2, t, false);
  statuses = bad.evaluate();
  EXPECT_NEAR(statuses[0].fast_burn, 2.0, 1e-9);
  EXPECT_NEAR(statuses[0].slow_burn, 2.0, 1e-9);
  EXPECT_EQ(statuses[0].state, HealthState::kCritical);
}

TEST(SloEngine, TierHealthIsWorstObjectiveAndJsonIsByteStable) {
  SloEngine slo;
  const int ok_id = slo.add_objective(
      {.name = "edge.latency", .tier = "edge", .target = 0.5});
  const int bad_id = slo.add_objective(
      {.name = "edge.availability", .tier = "edge", .target = 0.5});
  const int cloud_id = slo.add_objective(
      {.name = "cloud.latency", .tier = "cloud", .target = 0.5});
  for (int t = 0; t < 600; ++t) {
    slo.record(ok_id, t, true);
    slo.record(bad_id, t, false);
    slo.record(cloud_id, t, true);
  }
  const auto tiers = slo.tier_health();
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_EQ(tiers[0].tier, "edge");  // first-seen order
  EXPECT_EQ(tiers[0].state, HealthState::kCritical);
  EXPECT_EQ(tiers[1].tier, "cloud");
  EXPECT_EQ(tiers[1].state, HealthState::kOk);
  EXPECT_EQ(slo.overall(), HealthState::kCritical);
  EXPECT_EQ(slo.objective_id("edge.latency"), ok_id);
  EXPECT_EQ(slo.objective_id("nope"), -1);
  EXPECT_EQ(slo.to_json(), slo.to_json());
}

TEST(SloEngine, SnapshotHealthFlagsSlowTailAndDeadSamples) {
  MetricsRegistry reg;
  reg.counter("runtime.samples").add(100);
  reg.counter("runtime.dead").add(10);  // 90% availability vs 99% target
  HdrHistogram& h = reg.hdr_histogram("runtime.hdr_latency_ms", 1e-3, 3.6e6);
  for (int i = 0; i < 100; ++i) h.record(1000.0, 1, i);  // p99 >> 250 ms SLO
  const std::string health = health_from_metrics(reg.to_json(), {});
  EXPECT_NE(health.find("\"overall\": \"critical\""), std::string::npos);
  EXPECT_NE(health.find("runtime.hdr_latency_ms"), std::string::npos);
  // Deterministic given identical metrics JSON.
  EXPECT_EQ(health, health_from_metrics(reg.to_json(), {}));

  MetricsRegistry healthy;
  healthy.counter("runtime.samples").add(100);
  HdrHistogram& h2 =
      healthy.hdr_histogram("runtime.hdr_latency_ms", 1e-3, 3.6e6);
  for (int i = 0; i < 100; ++i) h2.record(5.0, 1, i);
  EXPECT_NE(health_from_metrics(healthy.to_json(), {})
                .find("\"overall\": \"ok\""),
            std::string::npos);
}

// --------------------------------------------------------------- satellites

TEST(Histogram, UnderflowAndOverflowAreCountedNotSilentlyClamped) {
  Histogram h(0.0, 10.0, 5);
  h.record(5.0);
  h.record(-3.0);  // clamps into the first bin, but the export says so
  h.record(1e9);   // clamps into the last bin, but the export says so
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  MetricsRegistry reg;
  Histogram& rh = reg.histogram("work.value", 0.0, 10.0, 5);
  rh.record(-3.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"underflow\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 0"), std::string::npos);
}


TEST(ConfusionMatrixBounds, ErrorMessagesNameTheOffendingValue) {
  core::ConfusionMatrix cm(3);
  try {
    cm.add(7, 1);
    FAIL() << "expected ddnn::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 3)"), std::string::npos);
  }
  try {
    cm.add(1, -2);
    FAIL() << "expected ddnn::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ddnn::obs
