// Tests for the observability layer (src/obs): metrics registry merge
// determinism, histogram percentile edges, runtime span tracing (tree shape
// + exact agreement with InferenceTrace/RuntimeMetrics), trace JSON schema
// and the profiling hooks.
//
// This suite runs under the determinism_obs_sweep CTest: every asserted
// value must be independent of DDNN_THREADS (the registry's merge contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ddnn::obs {
namespace {

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterMergesExactlyAcrossPoolWorkers) {
  MetricsRegistry reg;
  Counter& c = reg.counter("work.items");
  // Record from whatever pool DDNN_THREADS configured: the merged value
  // must be the exact item count no matter how the chunks were split.
  parallel_for(0, 10000, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), 10000);
}

TEST(MetricsRegistry, HistogramMergesExactlyAcrossPoolWorkers) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("work.value", 0.0, 100.0, 10);
  parallel_for(0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      h.record(static_cast<double>(i % 100));
    }
  });
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 99.0);
  const auto bins = h.bin_counts();
  ASSERT_EQ(bins.size(), 10u);
  for (const auto b : bins) EXPECT_EQ(b, 100);  // 10 values per bin, 10x each
}

TEST(MetricsRegistry, JsonIsByteStableAndOrderedByRegistration) {
  MetricsRegistry reg;
  reg.counter("b.second");
  reg.gauge("a.first").set(0.1);
  reg.counter("b.second").add(7);
  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());  // byte-identical re-export
  // Registration order, not name order.
  EXPECT_LT(json.find("b.second"), json.find("a.first"));
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // %.17g round-trips the gauge exactly.
  EXPECT_NE(json.find("0.10000000000000001"), std::string::npos);
}

TEST(MetricsRegistry, NameReuseWithDifferentTypeThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x", 0, 1, 2), Error);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("n").add(5);
  reg.histogram("h", 0, 10, 5).record(3.0);
  reg.reset();
  EXPECT_EQ(reg.counter("n").value(), 0);
  EXPECT_EQ(reg.histogram("h", 0, 10, 5).count(), 0);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"n", "h"}));
}

// ------------------------------------------------------ histogram percentile

TEST(Histogram, PercentileSingleSampleIsThatSample) {
  Histogram h(0.0, 100.0, 10);
  h.record(37.5);
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 37.5) << q;
  }
}

TEST(Histogram, PercentileAllEqualIsThatValue) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.record(42.0);
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 42.0) << q;
  }
}

TEST(Histogram, PercentileMatchesNearestRankOnBinAlignedValues) {
  // One distinct value per bin: the histogram's bin-granular nearest rank
  // must agree exactly with the sorted-vector definition.
  Histogram h(0.5, 100.5, 100);
  std::vector<double> sorted;
  for (int v = 1; v <= 100; ++v) {
    h.record(static_cast<double>(v));
    sorted.push_back(static_cast<double>(v));
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), dist::percentile_nearest_rank(sorted, q)) << q;
  }
}

TEST(Histogram, OutOfRangeValuesClampIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.record(-100.0);
  h.record(1e9);
  const auto bins = h.bin_counts();
  EXPECT_EQ(bins.front(), 1);
  EXPECT_EQ(bins.back(), 1);
  EXPECT_EQ(h.min(), -100.0);  // extrema keep the raw values
  EXPECT_EQ(h.max(), 1e9);
}

TEST(Histogram, PercentileRejectsBadRank) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.percentile(0.0), Error);
  EXPECT_THROW(h.percentile(1.5), Error);
}

// -------------------------------------------------------------- trace JSON

TEST(SpanTracer, GoldenJsonSchema) {
  SpanTracer tracer;
  tracer.set_track_name(0, "samples");
  tracer.set_track_name(1, "device0");
  tracer.add("sample", "sample", 0, 0.0, 0.0025)
      .with("bytes", std::int64_t{72})
      .with("entropy", 0.5)
      .with("note", "a\"b");
  tracer.add("send:scores", "net", 1, 0.002, 0.0005);
  const std::string expected =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
      "\"thread_name\", \"args\": {\"name\": \"samples\"}},\n"
      "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": "
      "\"thread_name\", \"args\": {\"name\": \"device0\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"name\": \"sample\", "
      "\"cat\": \"sample\", \"ts\": 0.000, \"dur\": 2500.000, \"args\": "
      "{\"bytes\": 72, \"entropy\": 0.5, \"note\": \"a\\\"b\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"name\": "
      "\"send:scores\", \"cat\": \"net\", \"ts\": 2000.000, \"dur\": "
      "500.000}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(tracer.to_json(), expected);
}

// ----------------------------------------------------------- runtime spans

struct ObsRuntimeFixture : public ::testing::Test {
  ObsRuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
    model = std::make_unique<core::DdnnModel>(
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
    model->set_training(false);
  }

  std::vector<const obs::Span*> sample_children(const SpanTracer& tracer,
                                                const Span& sample) const {
    std::vector<const obs::Span*> out;
    const double end = sample.start_s + sample.dur_s;
    for (const auto& s : tracer.spans()) {
      if (&s == &sample || s.name == "sample") continue;
      if (s.start_s >= sample.start_s && s.start_s + s.dur_s <= end + 1e-12) {
        out.push_back(&s);
      }
    }
    return out;
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::unique_ptr<core::DdnnModel> model;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(ObsRuntimeFixture, LocalExitSpanTreeShape) {
  // Threshold 1.0: normalized entropy is always <= 1, so every sample
  // classifies at the gateway — device sections, score sends, a gateway
  // fuse, and nothing above.
  dist::HierarchyRuntime runtime(*model, {1.0}, devices);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_EQ(trace.exit_taken, 0);

  const auto& spans = tracer.spans();
  const auto count = [&](const char* name) {
    return std::count_if(spans.begin(), spans.end(),
                         [&](const Span& s) { return s.name == name; });
  };
  EXPECT_EQ(count("sample"), 1);
  EXPECT_EQ(count("device_section"), 6);
  EXPECT_EQ(count("send:scores"), 6);
  EXPECT_EQ(count("gateway_fuse"), 1);
  EXPECT_EQ(count("send:features"), 0);
  EXPECT_EQ(count("cloud_classify"), 0);

  // Root span: exact InferenceTrace agreement, children nested inside.
  const Span& root = spans.back();
  ASSERT_EQ(root.name, "sample");
  EXPECT_EQ(root.dur_s, trace.latency_s);
  EXPECT_EQ(root.arg("latency_s")->d, trace.latency_s);
  EXPECT_EQ(root.arg("bytes")->i, trace.bytes_sent);
  EXPECT_EQ(root.arg("exit")->i, 0);
  EXPECT_EQ(sample_children(tracer, root).size(), spans.size() - 1);
}

TEST_F(ObsRuntimeFixture, CloudOffloadSpanTreeShape) {
  // Threshold -1: the local exit never fires, every sample escalates its
  // features and the cloud classifies.
  dist::HierarchyRuntime runtime(*model, {-1.0}, devices);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_EQ(trace.exit_taken, 1);

  const auto& spans = tracer.spans();
  const auto count = [&](const char* name) {
    return std::count_if(spans.begin(), spans.end(),
                         [&](const Span& s) { return s.name == name; });
  };
  EXPECT_EQ(count("send:scores"), 6);
  EXPECT_EQ(count("send:features"), 6);
  EXPECT_EQ(count("cloud_classify"), 1);

  // Span-summed delivered bytes equal the trace's byte count exactly.
  std::int64_t send_bytes = 0;
  for (const auto& s : spans) {
    if (s.name.rfind("send:", 0) == 0) send_bytes += s.arg("bytes")->i;
  }
  EXPECT_EQ(send_bytes, trace.bytes_sent);
  EXPECT_EQ(spans.back().arg("latency_s")->d, trace.latency_s);
}

TEST_F(ObsRuntimeFixture, DegradedAndDeadSpanShapes) {
  // Drop probability 1: nothing is ever delivered, so after the gateway
  // hears nothing and no feature or raw image arrives, the sample dies.
  dist::HierarchyRuntime runtime(*model, {1.0}, devices);
  dist::FaultPlan plan;
  plan.seed = 5;
  plan.link_drop_prob = 1.0;
  runtime.set_fault_plan(plan);
  SpanTracer tracer;
  runtime.set_tracer(&tracer);
  const auto trace = runtime.classify(dataset->test()[0]);
  EXPECT_TRUE(trace.dead);
  EXPECT_EQ(trace.exit_taken, -1);

  const auto& spans = tracer.spans();
  const Span& root = spans.back();
  ASSERT_EQ(root.name, "sample");
  EXPECT_EQ(root.arg("dead")->i, 1);
  EXPECT_EQ(root.arg("degraded")->i, 1);
  EXPECT_EQ(root.arg("bytes")->i, 0);
  // Sends happened (and failed): attempts recorded, zero delivered bytes.
  bool saw_failed_send = false;
  for (const auto& s : spans) {
    if (s.name.rfind("send:", 0) != 0) continue;
    saw_failed_send = true;
    EXPECT_EQ(s.arg("delivered")->i, 0);
    EXPECT_EQ(s.arg("bytes")->i, 0);
    EXPECT_GT(s.arg("attempts")->i, 1);
  }
  EXPECT_TRUE(saw_failed_send);

  // All devices down: the dead sample's tree is just the flagged root.
  dist::HierarchyRuntime downed(*model, {1.0}, devices);
  for (int b = 0; b < 6; ++b) downed.set_device_failed(b, true);
  SpanTracer tracer2;
  downed.set_tracer(&tracer2);
  const auto dead = downed.classify(dataset->test()[0]);
  EXPECT_TRUE(dead.dead);
  ASSERT_EQ(tracer2.spans().size(), 1u);
  EXPECT_EQ(tracer2.spans()[0].name, "sample");
  EXPECT_EQ(tracer2.spans()[0].dur_s, 0.0);
}

TEST_F(ObsRuntimeFixture, TraceJsonAndBoundMetricsAreRerunIdentical) {
  // The determinism contract end to end: same model + data + plan => byte-
  // identical trace JSON and metrics JSON, and the bound registry agrees
  // exactly with RuntimeMetrics.
  dist::FaultPlan plan;
  plan.seed = 13;
  plan.link_drop_prob = 0.1;
  auto run = [&] {
    dist::HierarchyRuntime runtime(*model, {0.5}, devices);
    runtime.set_fault_plan(plan);
    SpanTracer tracer;
    MetricsRegistry reg;
    runtime.set_tracer(&tracer);
    runtime.bind_metrics(&reg);
    for (const auto& s : dataset->test()) runtime.classify(s);
    return std::tuple{tracer.to_json(), reg.to_json(), runtime.metrics()};
  };
  const auto [trace1, metrics1, rm] = run();
  const auto [trace2, metrics2, rm2] = run();
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);

  // Registry vs RuntimeMetrics: exact.
  dist::HierarchyRuntime runtime(*model, {0.5}, devices);
  runtime.set_fault_plan(plan);
  MetricsRegistry reg;
  runtime.bind_metrics(&reg);
  for (const auto& s : dataset->test()) runtime.classify(s);
  const auto& m = runtime.metrics();
  EXPECT_EQ(reg.counter("runtime.samples").value(), m.samples);
  EXPECT_EQ(reg.counter("runtime.bytes_total").value(), m.total_bytes);
  EXPECT_EQ(reg.counter("runtime.correct").value(), m.correct);
  EXPECT_EQ(reg.counter("runtime.retries").value(), m.reliability.retries);
  EXPECT_EQ(reg.counter("runtime.drops").value(), m.reliability.drops);
  EXPECT_EQ(reg.counter("runtime.timeouts").value(), m.reliability.timeouts);
  EXPECT_EQ(reg.counter("runtime.exit.local").value(), m.exit_counts[0]);
  EXPECT_EQ(reg.counter("runtime.exit.cloud").value(), m.exit_counts[1]);
  EXPECT_EQ(reg.gauge("runtime.total_latency_s").value(), m.total_latency_s);
  EXPECT_EQ(reg.histogram("runtime.sample_latency_ms", 0, 1, 1).count(),
            m.samples);
}

// ---------------------------------------------------------------- profiling

TEST(Profile, DisabledHooksRecordNothing) {
  set_profiling_enabled(false);
  profile_reset();
  {
    DDNN_PROF_SCOPE("obs_test_op");
  }
  EXPECT_EQ(profile_calls("obs_test_op"), 0);
}

TEST(Profile, EnabledHooksCountCallsAndRenderTable) {
  set_profiling_enabled(true);
  profile_reset();
  for (int i = 0; i < 3; ++i) {
    DDNN_PROF_SCOPE("obs_test_op");
  }
  set_profiling_enabled(false);
  EXPECT_EQ(profile_calls("obs_test_op"), 3);
  const std::string table = profile_table().to_string();
  EXPECT_NE(table.find("obs_test_op"), std::string::npos);
  profile_reset();
  EXPECT_EQ(profile_calls("obs_test_op"), 0);
}

TEST(Profile, KernelHooksCoverHotOpsWhenEnabled) {
  set_profiling_enabled(true);
  profile_reset();
  Rng rng(3);
  const Tensor a = Tensor::randn(Shape{8, 16}, rng);
  const Tensor b = Tensor::randn(Shape{16, 8}, rng);
  ops::matmul(a, b);
  set_profiling_enabled(false);
  EXPECT_EQ(profile_calls("matmul"), 1);
  profile_reset();
}

TEST(Profile, TrainerPhasesAndMetricsSink) {
  data::MvmcConfig data_cfg;
  data_cfg.train_samples = 16;
  data_cfg.test_samples = 4;
  data_cfg.seed = 9;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));

  set_profiling_enabled(true);
  profile_reset();
  MetricsRegistry reg;
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.metrics = &reg;
  core::train_ddnn(model, dataset.train(), {0, 1, 2, 3, 4, 5}, cfg);
  set_profiling_enabled(false);

  EXPECT_EQ(reg.counter("train.epochs").value(), 1);
  EXPECT_EQ(reg.counter("train.batches").value(), 2);
  EXPECT_EQ(reg.counter("train.samples").value(), 16);
  EXPECT_EQ(profile_calls("train_forward"), 2);
  EXPECT_EQ(profile_calls("train_backward"), 2);
  EXPECT_EQ(profile_calls("train_step"), 2);
  profile_reset();
}

// --------------------------------------------------------------- satellites

TEST(ConfusionMatrixBounds, ErrorMessagesNameTheOffendingValue) {
  core::ConfusionMatrix cm(3);
  try {
    cm.add(7, 1);
    FAIL() << "expected ddnn::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[0, 3)"), std::string::npos);
  }
  try {
    cm.add(1, -2);
    FAIL() << "expected ddnn::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ddnn::obs
