// Tests for the fault-injection + reliability layer (dist/fault.hpp) and
// the runtime's graceful-degradation routing, plus round-trip coverage for
// the wire codecs at their clamp edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "dist/fault.hpp"
#include "dist/message.hpp"
#include "dist/node.hpp"
#include "dist/runtime.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

// ------------------------------------------------------------------ codecs

TEST(Codec, ClassScoresRoundTripExtremes) {
  const Tensor scores = Tensor::from_vector(
      Shape{1, 4}, {0.0f, -0.0f, 3.4e38f, 1.1754944e-38f});
  const Tensor back = decode_class_scores(encode_class_scores(scores), 4);
  EXPECT_TRUE(back.allclose(scores, 0.0f));  // exact float32 round trip
}

TEST(Codec, ClassScoresRejectBadShapes) {
  EXPECT_THROW(encode_class_scores(Tensor::zeros(Shape{2, 3})), Error);
  EXPECT_THROW(encode_class_scores(Tensor::zeros(Shape{1, 3, 1})), Error);
  EXPECT_NO_THROW(encode_class_scores(Tensor::zeros(Shape{3})));
  EXPECT_NO_THROW(encode_class_scores(Tensor::zeros(Shape{1, 3})));
}

TEST(Codec, BinaryFeatureMapRoundTripAtOddSizes) {
  // Sizes that do not fill whole bytes must still round-trip exactly.
  for (const std::int64_t n : {1, 7, 8, 9, 63}) {
    Tensor t(Shape{n});
    for (std::int64_t i = 0; i < n; ++i) t[i] = (i % 3 == 0) ? 1.0f : -1.0f;
    const Message msg = encode_binary_feature_map(t);
    EXPECT_EQ(msg.payload_bytes(), (n + 7) / 8);
    const Tensor back = decode_binary_feature_map(msg, Shape{n});
    EXPECT_TRUE(back.allclose(t, 0.0f)) << n;
  }
}

TEST(Codec, BinaryFeatureMapRejectsNearlyBinaryValues) {
  // The +-1 edge: values epsilon off the binarized grid must be rejected,
  // never silently rounded into the packing.
  EXPECT_THROW(encode_binary_feature_map(
                   Tensor::from_vector(Shape{2}, {1.0f, -1.0000001f})),
               Error);
  EXPECT_THROW(encode_binary_feature_map(
                   Tensor::from_vector(Shape{2}, {0.9999999f, -1.0f})),
               Error);
}

TEST(Codec, BinaryDecoderRejectsWrongPayloadSize) {
  Message msg = encode_binary_feature_map(
      Tensor::from_vector(Shape{8}, {1, -1, 1, -1, 1, -1, 1, -1}));
  msg.payload.push_back(0);
  EXPECT_THROW(decode_binary_feature_map(msg, Shape{8}), Error);
}

TEST(Codec, RawImageClampsOutOfRangeValues) {
  const Tensor img = Tensor::from_vector(
      Shape{6}, {-0.5f, 0.0f, 0.25f, 1.0f, 1.5f, 100.0f});
  const Message msg = encode_raw_image(img);
  EXPECT_EQ(msg.payload[0], 0);    // clamped up to 0
  EXPECT_EQ(msg.payload[1], 0);
  EXPECT_EQ(msg.payload[3], 255);
  EXPECT_EQ(msg.payload[4], 255);  // clamped down to 1
  EXPECT_EQ(msg.payload[5], 255);
  const Tensor back = decode_raw_image(msg, Shape{6});
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_GE(back[i], 0.0f);
    EXPECT_LE(back[i], 1.0f);
  }
  EXPECT_NEAR(back[2], 0.25f, 1.0f / 255.0f + 1e-6f);
}

TEST(Codec, DecodeFeaturesDispatchesOnKind) {
  Rng rng(11);
  const Tensor feats = ops::sign(Tensor::randn(Shape{1, 2, 4, 4}, rng));
  const Tensor via_binary =
      decode_features(encode_binary_feature_map(feats), feats.shape());
  EXPECT_TRUE(via_binary.allclose(feats, 0.0f));
  const Tensor img = Tensor::rand_uniform(Shape{1, 3, 4, 4}, rng, 0.0f, 1.0f);
  const Tensor via_raw = decode_features(encode_raw_image(img), img.shape());
  EXPECT_TRUE(via_raw.allclose(img, 1.0f / 255.0f + 1e-6f));
}

// ---------------------------------------------------------------- injector

TEST(FaultInjector, SeededDropsAreDeterministicAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 99;
  plan.link_drop_prob = 0.3;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  std::vector<bool> forward, backward;
  for (int s = 0; s < 200; ++s) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      forward.push_back(a.drop("device0->gateway", s, attempt));
    }
  }
  for (int s = 199; s >= 0; --s) {
    for (int attempt = 2; attempt >= 0; --attempt) {
      backward.push_back(b.drop("device0->gateway", s, attempt));
    }
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);  // pure function of coordinates

  plan.seed = 100;
  const FaultInjector c(plan);
  std::vector<bool> other;
  for (int s = 0; s < 200; ++s) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      other.push_back(c.drop("device0->gateway", s, attempt));
    }
  }
  EXPECT_NE(forward, other);  // the seed matters
}

TEST(FaultInjector, DropRateTracksProbability) {
  FaultPlan plan;
  plan.seed = 5;
  plan.link_drop_prob = 0.25;
  plan.link_drop_overrides["lossless"] = 0.0;
  plan.link_drop_overrides["dead"] = 1.0;
  const FaultInjector inj(plan);
  int dropped = 0;
  const int n = 4000;
  for (int s = 0; s < n; ++s) {
    dropped += inj.drop("some-link", s, 0) ? 1 : 0;
    EXPECT_FALSE(inj.drop("lossless", s, 0));
    EXPECT_TRUE(inj.drop("dead", s, 0));
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.25, 0.03);
}

TEST(FaultInjector, DeviceSchedules) {
  FaultPlan plan;
  plan.seed = 3;
  plan.devices.resize(3);
  plan.devices[0].permanent_fail_at = 10;
  plan.devices[1].intermittent_down_prob = 0.5;
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.device_down(0, 9));
  EXPECT_TRUE(inj.device_down(0, 10));
  EXPECT_TRUE(inj.device_down(0, 100000));
  int down = 0;
  for (int s = 0; s < 2000; ++s) down += inj.device_down(1, s) ? 1 : 0;
  EXPECT_NEAR(down / 2000.0, 0.5, 0.05);
  for (int s = 0; s < 100; ++s) {
    EXPECT_FALSE(inj.device_down(2, s));  // empty schedule
    EXPECT_FALSE(inj.device_down(7, s));  // beyond the plan: healthy
  }
}

TEST(FaultInjector, EdgeOutageWindows) {
  FaultPlan plan;
  plan.edge_outages.push_back(
      {.group = 1, .start_sample = 5, .end_sample = 8});
  plan.edge_outages.push_back(
      {.group = -1, .start_sample = 20, .end_sample = 21});
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.edge_down(1, 4));
  EXPECT_TRUE(inj.edge_down(1, 5));
  EXPECT_TRUE(inj.edge_down(1, 7));
  EXPECT_FALSE(inj.edge_down(1, 8));   // half-open window
  EXPECT_FALSE(inj.edge_down(0, 6));   // other group unaffected
  EXPECT_TRUE(inj.edge_down(0, 20));   // -1 hits every group
  EXPECT_TRUE(inj.edge_down(3, 20));
}

TEST(FaultInjector, PlanValidation) {
  FaultPlan plan;
  plan.link_drop_prob = 1.5;
  EXPECT_THROW(FaultInjector{plan}, Error);
  plan.link_drop_prob = 0.0;
  plan.devices.push_back({.intermittent_down_prob = -0.1});
  EXPECT_THROW(FaultInjector{plan}, Error);
  plan.devices.clear();
  plan.edge_outages.push_back({.group = 0, .start_sample = 9,
                               .end_sample = 3});
  EXPECT_THROW(FaultInjector{plan}, Error);
}

// ----------------------------------------------------------------- channel

TEST(ReliableChannel, NoInjectorDeliversFirstTryAtLinkLatency) {
  Link link("test", {.bandwidth_bytes_per_s = 1000.0, .base_latency_s = 0.01});
  ReliableChannel channel(link, nullptr, ReliabilityConfig{});
  const Message msg = encode_class_scores(Tensor::zeros(Shape{1, 3}));
  const SendResult res = channel.send(msg, 0);
  EXPECT_TRUE(res.delivered);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.dropped_attempts, 0);
  EXPECT_DOUBLE_EQ(res.latency_s, link.latency_for(msg.payload_bytes()));
  EXPECT_EQ(link.stats().messages, 1);
  EXPECT_EQ(link.stats().attempts, 1);
  EXPECT_EQ(link.stats().dropped, 0);
}

TEST(ReliableChannel, DeadLinkExhaustsRetriesAndTimesOut) {
  FaultPlan plan;
  plan.link_drop_overrides["dead"] = 1.0;
  const FaultInjector inj(plan);
  Link link("dead");
  ReliabilityConfig cfg;
  cfg.max_retries = 3;
  cfg.timeout_s = 0.05;
  cfg.backoff_base_s = 0.01;
  cfg.backoff_factor = 2.0;
  cfg.jitter_frac = 0.0;
  ReliableChannel channel(link, &inj, cfg);
  const Message msg = encode_class_scores(Tensor::zeros(Shape{1, 3}));
  const SendResult res = channel.send(msg, 0);
  EXPECT_FALSE(res.delivered);
  EXPECT_EQ(res.attempts, 4);          // 1 + max_retries
  EXPECT_EQ(res.dropped_attempts, 4);
  // 4 timeouts + backoffs 10, 20, 40 ms (no jitter).
  EXPECT_NEAR(res.latency_s, 4 * 0.05 + 0.01 + 0.02 + 0.04, 1e-12);
  EXPECT_EQ(link.stats().messages, 0);
  EXPECT_EQ(link.stats().bytes, 0);    // nothing delivered
  EXPECT_EQ(link.stats().attempts, 4);
  EXPECT_EQ(link.stats().dropped, 4);
  EXPECT_EQ(link.stats().bytes_dropped, 4 * msg.payload_bytes());
}

TEST(ReliableChannel, RetryAccountingIsDeterministic) {
  FaultPlan plan;
  plan.seed = 21;
  plan.link_drop_prob = 0.5;
  const FaultInjector inj(plan);
  const Message msg = encode_class_scores(Tensor::zeros(Shape{1, 3}));
  auto run = [&] {
    Link link("flaky");
    ReliableChannel channel(link, &inj, ReliabilityConfig{});
    std::int64_t retries = 0, delivered = 0;
    double latency = 0.0;
    for (int s = 0; s < 500; ++s) {
      const SendResult res = channel.send(msg, s);
      retries += res.attempts - 1;
      delivered += res.delivered ? 1 : 0;
      latency += res.latency_s;
      // Attempts on the link always reconcile with delivered + dropped.
      EXPECT_EQ(link.stats().attempts,
                link.stats().messages + link.stats().dropped);
    }
    return std::tuple{retries, delivered, latency};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<0>(a), 0);
  EXPECT_GT(std::get<1>(a), 400);  // p(all 3 attempts drop) = 0.125
  EXPECT_LT(std::get<1>(a), 500);
}

// -------------------------------------------------------------- hierarchy

struct FaultRuntimeFixture : public ::testing::Test {
  FaultRuntimeFixture() {
    data::MvmcConfig data_cfg;
    data_cfg.train_samples = 48;
    data_cfg.test_samples = 24;
    data_cfg.seed = 77;
    dataset = std::make_unique<data::MvmcDataset>(
        data::MvmcDataset::generate(data_cfg));
  }

  std::unique_ptr<data::MvmcDataset> dataset;
  std::vector<int> devices{0, 1, 2, 3, 4, 5};
};

TEST_F(FaultRuntimeFixture, DeviceFailureClearsCachedState) {
  // Regression: set_failed(true) used to leave view_/features_ populated,
  // so a device revived without a fresh sense() silently served
  // pre-failure features.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  DeviceNode dev(0, model, 0);
  dev.sense(dataset->test()[0].views[0]);
  EXPECT_NO_THROW(dev.feature_message());
  EXPECT_NO_THROW(dev.raw_image_message());
  dev.set_failed(true);
  EXPECT_THROW(dev.feature_message(), Error);
  EXPECT_THROW(dev.scores_message(), Error);
  EXPECT_THROW(dev.raw_image_message(), Error);
  dev.set_failed(false);
  // Revived but never re-sensed: the cache must be gone, not stale.
  EXPECT_THROW(dev.feature_message(), Error);
  EXPECT_THROW(dev.raw_image_message(), Error);
  dev.sense(dataset->test()[0].views[0]);
  EXPECT_NO_THROW(dev.feature_message());
}

TEST_F(FaultRuntimeFixture, FaultyRunCompletesAndIsDeterministic) {
  // The acceptance scenario: lossy links, one permanently failed device,
  // one flapping device. The full split completes with no aborts, faults
  // actually fire, and repeated runs are bit-identical.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  FaultPlan plan;
  plan.seed = 13;
  plan.link_drop_prob = 0.1;
  plan.devices.resize(5);
  plan.devices[2].permanent_fail_at = 0;
  plan.devices[4].intermittent_down_prob = 0.3;

  auto run = [&] {
    HierarchyRuntime runtime(model, {0.5}, devices);
    runtime.set_fault_plan(plan);
    std::vector<InferenceTrace> traces;
    for (const auto& s : dataset->test()) traces.push_back(runtime.classify(s));
    return std::pair{runtime.metrics(), traces};
  };
  const auto [metrics, traces] = run();
  const auto [metrics2, traces2] = run();

  const auto n = static_cast<std::int64_t>(dataset->test().size());
  EXPECT_EQ(metrics.samples, n);
  EXPECT_EQ(metrics.device_bytes[2], 0);  // permanently failed
  EXPECT_GT(metrics.reliability.drops, 0);
  EXPECT_GT(metrics.reliability.retries, 0);
  EXPECT_GT(metrics.accuracy(), 0.0);

  EXPECT_EQ(metrics.correct, metrics2.correct);
  EXPECT_EQ(metrics.total_bytes, metrics2.total_bytes);
  EXPECT_DOUBLE_EQ(metrics.total_latency_s, metrics2.total_latency_s);
  EXPECT_EQ(metrics.reliability.drops, metrics2.reliability.drops);
  EXPECT_EQ(metrics.reliability.retries, metrics2.reliability.retries);
  EXPECT_EQ(metrics.reliability.timeouts, metrics2.reliability.timeouts);
  ASSERT_EQ(traces.size(), traces2.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].prediction, traces2[i].prediction) << i;
    EXPECT_EQ(traces[i].exit_taken, traces2[i].exit_taken) << i;
    EXPECT_EQ(traces[i].retries, traces2[i].retries) << i;
    EXPECT_DOUBLE_EQ(traces[i].latency_s, traces2[i].latency_s) << i;
  }
}

TEST_F(FaultRuntimeFixture, ResetMetricsRewindsTheFaultTimeline) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  FaultPlan plan;
  plan.seed = 13;
  plan.link_drop_prob = 0.2;
  runtime.set_fault_plan(plan);
  const auto first = runtime.run(dataset->test());
  const auto drops = first.reliability.drops;
  runtime.reset_metrics();
  const auto second = runtime.run(dataset->test());
  EXPECT_EQ(second.reliability.drops, drops);
  EXPECT_EQ(second.correct, first.correct);
}

TEST_F(FaultRuntimeFixture, GatewayHearingNothingEscalatesInsteadOfAborting) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.8}, devices);
  FaultPlan plan;
  for (int d = 0; d < 6; ++d) {
    plan.link_drop_overrides["device" + std::to_string(d) + "->gateway"] = 1.0;
  }
  runtime.set_fault_plan(plan);
  const auto metrics = runtime.run(dataset->test());
  const auto n = static_cast<std::int64_t>(dataset->test().size());
  EXPECT_EQ(metrics.samples, n);
  EXPECT_EQ(metrics.exit_counts[0], 0);  // no local decision possible
  EXPECT_EQ(metrics.exit_counts[1], n);  // everything classified in the cloud
  EXPECT_EQ(metrics.reliability.degraded_exits, n);
  EXPECT_EQ(metrics.reliability.dead_samples, 0);
  // Every sample: 6 senders x (1 + 2 retries) dropped score attempts.
  EXPECT_EQ(metrics.reliability.timeouts, 6 * n);
  EXPECT_EQ(metrics.reliability.drops, 6 * 3 * n);
  EXPECT_GT(metrics.accuracy(), 0.0);
}

TEST_F(FaultRuntimeFixture, EdgeOutageEscalatesStraightToCloud) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  // Local never confident, edge always confident: normally everything
  // exits at the edge (see test_dist EdgeConfigRunsThreeTiers).
  HierarchyRuntime runtime(model, {0.0, 1.0}, devices);
  FaultPlan plan;
  plan.edge_outages.push_back(
      {.group = -1, .start_sample = 0, .end_sample = 1 << 20});
  runtime.set_fault_plan(plan);
  const auto metrics = runtime.run(dataset->test());
  const auto n = static_cast<std::int64_t>(dataset->test().size());
  EXPECT_EQ(metrics.samples, n);
  EXPECT_EQ(metrics.exit_counts[1], 0);  // the edge exit is unreachable
  EXPECT_EQ(metrics.exit_counts[2], n);  // everything lands in the cloud
  EXPECT_EQ(metrics.reliability.degraded_exits, n);
  EXPECT_EQ(metrics.reliability.dead_samples, 0);
  for (const auto& link : runtime.edge_cloud_links()) {
    EXPECT_EQ(link.stats().bytes, 0);  // the edge never transmitted
  }
  std::int64_t fallback_bytes = 0;
  for (const auto& link : runtime.device_cloud_fallback_links()) {
    fallback_bytes += link.stats().bytes;
  }
  EXPECT_GT(fallback_bytes, 0);  // features re-routed device -> cloud
  EXPECT_GT(metrics.accuracy(), 0.0);
}

TEST_F(FaultRuntimeFixture, RawOffloadWhenNoFeatureReachesTheCloud) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  // Local never exits; every device->edge feature send is lost. The only
  // remaining route is raw-image offload over the fallback links.
  HierarchyRuntime runtime(model, {0.0, 0.5}, devices);
  FaultPlan plan;
  for (int d = 0; d < 6; ++d) {
    plan.link_drop_overrides["device" + std::to_string(d) + "->edge"] = 1.0;
  }
  runtime.set_fault_plan(plan);
  const auto metrics = runtime.run(dataset->test());
  const auto n = static_cast<std::int64_t>(dataset->test().size());
  EXPECT_EQ(metrics.samples, n);
  EXPECT_EQ(metrics.reliability.dead_samples, 0);
  EXPECT_EQ(metrics.exit_counts[2], n);
  EXPECT_EQ(metrics.reliability.degraded_exits, n);
  // Raw offload pays the paper's traditional-offloading price per device.
  for (const auto& link : runtime.device_cloud_fallback_links()) {
    EXPECT_EQ(link.stats().bytes, n * 3 * 32 * 32);
  }
  for (const auto& link : runtime.device_uplink_links()) {
    EXPECT_EQ(link.stats().bytes, 0);
    EXPECT_GT(link.stats().dropped, 0);
  }
  EXPECT_GT(metrics.accuracy(), 0.0);
}

TEST_F(FaultRuntimeFixture, EmptyRunLinkReportShowsNoRate) {
  // Regression: with zero samples the report used to print total bytes as
  // "Bytes/sample" (dividing by max(1, samples)).
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  const std::string report = runtime.link_report().to_string();
  EXPECT_NE(report.find("-"), std::string::npos);
  runtime.run(dataset->test());
  const std::string full = runtime.link_report().to_string();
  EXPECT_NE(full.find("device0->gateway"), std::string::npos);
}

TEST_F(FaultRuntimeFixture, FaultPlanValidatedAgainstHierarchy) {
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime runtime(model, {0.5}, devices);
  FaultPlan plan;
  plan.edge_outages.push_back({.group = 0, .start_sample = 0,
                               .end_sample = 10});
  // No edge tier in preset (c): an outage plan must fail loudly.
  EXPECT_THROW(runtime.set_fault_plan(plan), Error);
  plan.edge_outages.clear();
  plan.devices.resize(9);  // more scheduled devices than the runtime has
  EXPECT_THROW(runtime.set_fault_plan(plan), Error);
}

TEST_F(FaultRuntimeFixture, FaultFreePlanMatchesSeedBehaviorExactly) {
  // A plan with zero probabilities must not perturb results, bytes or
  // latency relative to no plan at all.
  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  HierarchyRuntime plain(model, {0.5}, devices);
  HierarchyRuntime injected(model, {0.5}, devices);
  FaultPlan plan;
  plan.seed = 4242;
  injected.set_fault_plan(plan);
  const auto a = plain.run(dataset->test());
  const auto b = injected.run(dataset->test());
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_FALSE(b.reliability.any());
}

}  // namespace
}  // namespace ddnn::dist
