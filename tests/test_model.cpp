#include <gtest/gtest.h>

#include "autograd/grad_mode.hpp"
#include "core/model.hpp"
#include "util/error.hpp"

namespace ddnn::core {
namespace {

using autograd::Variable;

std::vector<Variable> dummy_views(int n, std::int64_t batch = 2,
                                  std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<Variable> views;
  for (int i = 0; i < n; ++i) {
    views.emplace_back(Tensor::rand_uniform(Shape{batch, 3, 32, 32}, rng,
                                            0.0f, 1.0f));
  }
  return views;
}

TEST(DdnnModel, ConfigCForwardShapes) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.exit_logits.size(), 2u);
  EXPECT_EQ(out.exit_logits[0].shape(), Shape({2, 3}));
  EXPECT_EQ(out.exit_logits[1].shape(), Shape({2, 3}));
  ASSERT_EQ(out.device_features.size(), 6u);
  EXPECT_EQ(out.device_features[0].shape(), Shape({2, 4, 16, 16}));
  ASSERT_EQ(out.device_logits.size(), 6u);
  EXPECT_EQ(out.device_logits[3].shape(), Shape({2, 3}));
  EXPECT_EQ(model.exit_names(), (std::vector<std::string>{"local", "cloud"}));
}

TEST(DdnnModel, DeviceFeaturesAreBinary) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  for (const auto& f : out.device_features) {
    for (std::int64_t i = 0; i < f.numel(); ++i) {
      EXPECT_TRUE(f.value()[i] == 1.0f || f.value()[i] == -1.0f);
    }
  }
}

TEST(DdnnModel, ConfigAForwardsCloudExitOnly) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kCloudOnly));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.exit_logits.size(), 1u);
  EXPECT_TRUE(out.device_logits.empty());
  EXPECT_EQ(model.exit_names(), (std::vector<std::string>{"cloud"}));
  // Devices run no NN blocks: features are the raw views.
  EXPECT_EQ(out.device_features[0].shape(), Shape({2, 3, 32, 32}));
}

TEST(DdnnModel, ConfigBSingleDevice) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDeviceCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(1));
  ASSERT_EQ(out.exit_logits.size(), 2u);
}

TEST(DdnnModel, ConfigEEdgeTierShapes) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesEdgeCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.exit_logits.size(), 3u);
  ASSERT_EQ(out.edge_features.size(), 1u);
  EXPECT_EQ(out.edge_features[0].shape(), Shape({2, 16, 8, 8}));
  EXPECT_EQ(model.exit_names(),
            (std::vector<std::string>{"local", "edge", "cloud"}));
}

TEST(DdnnModel, ConfigFTwoEdgeGroups) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesEdgesCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.edge_features.size(), 2u);
  ASSERT_EQ(out.exit_logits.size(), 3u);
}

TEST(DdnnModel, FailedDeviceChangesButDoesNotBreakForward) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto views = dummy_views(6);
  const auto healthy = model.forward(views);
  std::vector<bool> active(6, true);
  active[5] = false;
  const auto degraded = model.forward(views, active);
  EXPECT_EQ(degraded.exit_logits[0].shape(), Shape({2, 3}));
  // Failure must actually change the fused outputs.
  EXPECT_FALSE(degraded.exit_logits[1].value().allclose(
      healthy.exit_logits[1].value(), 1e-6f));
}

TEST(DdnnModel, AllDevicesFailedThrows) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  autograd::NoGradGuard no_grad;
  EXPECT_THROW(model.forward(dummy_views(6), std::vector<bool>(6, false)),
               Error);
}

TEST(DdnnModel, RejectsWrongViewCountOrShape) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  autograd::NoGradGuard no_grad;
  EXPECT_THROW(model.forward(dummy_views(5)), Error);
  Rng rng(1);
  std::vector<Variable> bad(6,
                            Variable(Tensor::zeros(Shape{2, 3, 16, 16})));
  EXPECT_THROW(model.forward(bad), Error);
}

TEST(DdnnModel, DeterministicConstructionAndForward) {
  DdnnConfig cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  DdnnModel a(cfg), b(cfg);
  a.set_training(false);
  b.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto views = dummy_views(6);
  const auto oa = a.forward(views);
  const auto ob = b.forward(views);
  EXPECT_TRUE(oa.exit_logits[1].value().allclose(ob.exit_logits[1].value(),
                                                 0.0f));
}

TEST(DdnnModel, InitSeedChangesWeights) {
  DdnnConfig cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  cfg.init_seed = 2;
  DdnnModel a(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  DdnnModel b(cfg);
  EXPECT_FALSE(a.parameters()[0].var.value().allclose(
      b.parameters()[0].var.value(), 1e-6f));
}

TEST(DdnnModel, DeviceMemoryUnder2KbForPaperFilterRange) {
  // Paper Section IV-F: device NN layers fit in under 2 KB for all
  // evaluated filter counts.
  for (int f : {2, 4, 8, 12}) {
    DdnnModel model(
        DdnnConfig::preset(HierarchyPreset::kDevicesCloud, 6, f));
    EXPECT_LT(model.device_memory_bytes(), 2048) << "f=" << f;
    EXPECT_GT(model.device_memory_bytes(), 0);
  }
}

TEST(DdnnModel, SectionApiMatchesMonolithicForward) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto views = dummy_views(6);
  const auto out = model.forward(views);

  std::vector<Variable> feats, logits;
  for (int d = 0; d < 6; ++d) {
    feats.push_back(model.device_section_features(d, views[d]));
    logits.push_back(model.device_section_logits(d, feats.back()));
  }
  const std::vector<bool> active(6, true);
  EXPECT_TRUE(model.local_aggregate(logits, active)
                  .value()
                  .allclose(out.exit_logits[0].value(), 0.0f));
  EXPECT_TRUE(model.cloud_section(feats, active)
                  .value()
                  .allclose(out.exit_logits[1].value(), 0.0f));
}

TEST(IndividualModel, ShapeAndMemory) {
  IndividualModel model(3, 32, 4, 3, 11);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  Rng rng(2);
  Variable y = model.forward(
      Variable(Tensor::rand_uniform(Shape{5, 3, 32, 32}, rng, 0.0f, 1.0f)));
  EXPECT_EQ(y.shape(), Shape({5, 3}));
  EXPECT_LT(model.memory_bytes(), 2048);
}

TEST(DdnnModel, FloatCloudForwardAndCacheKey) {
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  cfg.float_cloud = true;
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.exit_logits.size(), 2u);
  EXPECT_EQ(out.exit_logits[1].shape(), Shape({2, 3}));
  // Device tier stays binary even with a float cloud.
  for (std::int64_t i = 0; i < out.device_features[0].numel(); ++i) {
    const float v = out.device_features[0].value()[i];
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
  EXPECT_NE(cfg.cache_key(),
            DdnnConfig::preset(HierarchyPreset::kDevicesCloud).cache_key());
}

TEST(DdnnModel, FloatDevicesForwardProducesFloatFeatures) {
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  cfg.float_devices = true;
  cfg.float_cloud = true;
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  ASSERT_EQ(out.exit_logits.size(), 2u);
  bool any_fractional = false;
  for (std::int64_t i = 0; i < out.device_features[0].numel(); ++i) {
    const float v = out.device_features[0].value()[i];
    any_fractional = any_fractional || (v != 1.0f && v != -1.0f);
  }
  EXPECT_TRUE(any_fractional);
  EXPECT_NE(cfg.cache_key(),
            DdnnConfig::preset(HierarchyPreset::kDevicesCloud).cache_key());
}

TEST(DdnnModel, GatedLocalAggregationForward) {
  auto cfg = DdnnConfig::preset(HierarchyPreset::kDevicesCloud);
  cfg.local_agg = AggKind::kGatedAvg;
  DdnnModel model(cfg);
  model.set_training(false);
  autograd::NoGradGuard no_grad;
  const auto out = model.forward(dummy_views(6));
  EXPECT_EQ(out.exit_logits[0].shape(), Shape({2, 3}));
  // GA must also survive a device failure (gates renormalize).
  std::vector<bool> active(6, true);
  active[0] = false;
  EXPECT_NO_THROW(model.forward(dummy_views(6), active));
}

TEST(DdnnModel, TrainingModeBuildsTape) {
  DdnnModel model(DdnnConfig::preset(HierarchyPreset::kDevicesCloud));
  model.set_training(true);
  const auto out = model.forward(dummy_views(6));
  EXPECT_TRUE(out.exit_logits[0].requires_grad());
  EXPECT_TRUE(out.exit_logits[1].requires_grad());
}

}  // namespace
}  // namespace ddnn::core
