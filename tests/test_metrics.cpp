#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "util/error.hpp"

namespace ddnn::core {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add_all({0, 0, 1, 2, 2, 2}, {0, 1, 1, 2, 2, 0});
  EXPECT_EQ(cm.total(), 6);
  EXPECT_EQ(cm.count(0, 0), 1);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, 0), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 6.0);
}

TEST(ConfusionMatrix, PrecisionAndRecall) {
  ConfusionMatrix cm(3);
  // truth 0 predicted as {0, 0, 1}; truth 1 predicted as {1}; truth 2 as {1}.
  cm.add_all({0, 0, 0, 1, 2}, {0, 0, 1, 1, 1});
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);  // never predicted
  EXPECT_DOUBLE_EQ(cm.macro_recall(), (2.0 / 3.0 + 1.0 + 0.0) / 3.0);
}

TEST(ConfusionMatrix, EmptyIsZeroNotNan) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
}

TEST(ConfusionMatrix, ValidatesInputs) {
  ConfusionMatrix cm(3);
  EXPECT_THROW(cm.add(3, 0), Error);
  EXPECT_THROW(cm.add(0, -1), Error);
  EXPECT_THROW(cm.add_all({0}, {0, 1}), Error);
  EXPECT_THROW(ConfusionMatrix(1), Error);
}

TEST(ConfusionMatrix, TableRendersNamesAndTotals) {
  ConfusionMatrix cm(3);
  cm.add_all({0, 1, 2, 2}, {0, 1, 2, 1});
  const Table t = cm.to_table({"car", "bus", "person"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("car"), std::string::npos);
  EXPECT_NE(s.find("person"), std::string::npos);
  EXPECT_NE(s.find("precision"), std::string::npos);
  EXPECT_NE(s.find("75.0% acc"), std::string::npos);
}

TEST(ConfusionMatrix, MacroRecallIsImbalanceRobust) {
  // 90 samples of class 0 all right, 10 of class 1 all wrong: plain accuracy
  // is 0.9 but macro recall exposes the failing minority class.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 90; ++i) cm.add(0, 0);
  for (int i = 0; i < 10; ++i) cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(cm.macro_recall(), 0.5);
}

}  // namespace
}  // namespace ddnn::core
